"""Instrument primitives: counters, gauges, and histograms in a registry.

The shapes follow the de-facto telemetry vocabulary (Prometheus/
OpenMetrics): a *counter* only goes up, a *gauge* is a set-to-value
sample, a *histogram* buckets observations against fixed upper bounds.
All three are plain Python accumulators — the simulator is single-
threaded per run, so there is no locking, and ``as_dict()`` freezes a
registry into JSON-ready plain data for export and for crossing the
process-pool boundary.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Optional, Sequence

from repro.util.validation import require

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_LATENCY_BUCKETS_S"]

#: Log-spaced service/latency bucket bounds (seconds): 100 us .. 100 s.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2, 3.16e-2, 1e-1, 3.16e-1,
    1.0, 3.16, 10.0, 31.6, 100.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if not (amount >= 0.0):
            raise ValueError(f"counter increment must be >= 0, got {amount!r}")
        self.value += amount

    def as_dict(self) -> dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = math.nan

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def as_dict(self) -> dict[str, object]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bound bucketed distribution with exact count/sum/min/max.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; one
    overflow bucket at the end takes everything larger (the implicit
    ``+Inf`` bound), so ``sum(bucket_counts) == count`` always.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S) -> None:
        require(len(bounds) >= 1, "histogram needs at least one bucket bound")
        require(all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:])),
                "histogram bounds must be strictly increasing")
        self.name = name
        self.bounds: tuple[float, ...] = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (NaN when empty)."""
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate: the upper bound of the
        bucket containing the ``q``-th observation (``inf`` when it lands
        in the overflow bucket, NaN when empty)."""
        require(0.0 <= q <= 1.0, f"q must be in [0, 1], got {q!r}")
        if not self.count:
            return math.nan
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= target and n:
                return self.bounds[i] if i < len(self.bounds) else math.inf
        return math.inf

    def as_dict(self) -> dict[str, object]:
        return {
            "type": "histogram", "count": self.count, "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }


class MetricsRegistry:
    """Name-keyed instrument store (one per observed simulation).

    ``counter``/``gauge``/``histogram`` are get-or-create: calling twice
    with the same name returns the same instrument, so emission sites
    never coordinate.  Re-registering a name as a *different* kind is a
    bug and raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, *args)
            self._instruments[name] = instrument
            return instrument
        require(type(instrument) is kind,
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S) -> Histogram:
        """Get or create the histogram ``name`` (bounds fixed at creation)."""
        return self._get_or_create(name, Histogram, bounds)

    def get(self, name: str) -> Optional[Counter | Gauge | Histogram]:
        """Look up an instrument without creating it."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        """Registered instrument names, sorted."""
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterable[Counter | Gauge | Histogram]:
        return iter(self._instruments.values())

    def as_dict(self) -> dict[str, dict[str, object]]:
        """Freeze every instrument into JSON-ready plain data (sorted
        by name, so serialization is deterministic)."""
        return {name: self._instruments[name].as_dict()
                for name in sorted(self._instruments)}
