"""The event taxonomy of the simulation trace bus.

Every instrumented layer emits events of these types onto the
:class:`~repro.obs.bus.TraceBus`; exporters and the ``obs summarize``
rollups key on them.  Producers pass the type string plus flat,
JSON-serializable fields — the canonical field set per type is
documented here (and in DESIGN.md Sec. 8) so consumers can rely on it:

Request lifecycle (``disk``, ``file`` where applicable, ``internal``)
    * ``request.submit``   — a job entered a drive's queue
      (``disk``, ``size_mb``, ``internal``, ``file``)
    * ``request.dispatch`` — service started
      (``disk``, ``wait_s``, ``service_s``, ``internal``)
    * ``request.complete`` — service finished
      (``disk``, ``size_mb``, ``sojourn_s``, ``internal``)
    * ``request.fail``     — a job was failed (disk death / dead target)
      (``disk``, ``internal``, ``reason``)
    * ``request.redirect`` — degraded-mode redirect to an alternate copy
      (``file``, ``from``, ``to``)
    * ``request.retry``    — a failed user request was resubmitted
      (``file``, ``attempt``)
    * ``request.reconstruct`` — degraded k-of-n read fanned across a
      redundancy group's survivors (``file``, ``disk``, ``legs``)

Disk state (``disk`` always)
    * ``disk.transition.begin`` — spindle speed change started
      (``disk``, ``from``, ``to``)
    * ``disk.transition.end``   — speed change finished (``disk``, ``speed``)
    * ``disk.replace``          — replacement spindle installed
      (``disk``, ``speed``)

Fault lifecycle (``disk`` always)
    * ``fault.inject``           — a disk failed (``disk``, ``dropped_jobs``)
    * ``fault.data_loss``        — the failure caught files with no live
      copy (``disk``, ``files_lost``)
    * ``fault.rebuild.start``    — rebuild stream submitted
      (``disk``, ``size_mb``)
    * ``fault.rebuild.complete`` — disk back in service (``disk``)
    * ``fault.domain.outage``    — a whole fault domain failed at once
      (``domain``, ``disks_failed``)

Redundancy groups
    * ``redundancy.group.state`` — a group changed health class
      (``group``, ``from``, ``to`` over healthy/degraded/critical/lost)

Policy decisions
    * ``policy.spin_down``     — idleness threshold expired (``disk``)
    * ``policy.spin_up``       — demand spin-up triggered
      (``disk``, ``backlog``)
    * ``policy.cache.hit`` / ``policy.cache.miss`` — MAID cache outcome
      (``file``, ``disk``)
    * ``policy.cache.insert``  — MAID cache copy landed (``file``, ``disk``)
    * ``policy.epoch``         — PDC reorganization ran
      (``tick``, ``movers``, ``moved``)
    * ``policy.migrate``       — one file migration charged
      (``file``, ``src``, ``dst``, ``size_mb``)
    * ``policy.stripe.fanout`` — striped request fanned out
      (``file``, ``chunks``)

Engine lifecycle
    * ``engine.start`` — the run began (``policy``, ``n_disks``,
      ``n_requests``)
    * ``engine.stop``  — the run ended (``events``, ``duration_s``)

Harness faults (sweep-runner resilience; emitted at ``t=0.0`` because
they happen outside simulated time, ordered by ``seq``)
    * ``harness.checkpoint.hit`` — a cell was restored from a sweep
      checkpoint instead of re-running (``cell``)
    * ``harness.cell.retry``     — a failed/crashed cell was re-queued
      (``cell``, ``attempt``, ``reason``)
    * ``harness.cell.timeout``   — a cell exceeded its wall-clock limit
      and was killed (``cell``, ``timeout_s``)
    * ``harness.cell.salvage``   — an innocent in-flight cell was
      re-queued after a pool breakage, at the same attempt (``cell``)
    * ``harness.pool.respawn``   — the worker pool broke (or was killed
      on a timeout) and was recreated (``respawn``, ``requeued``)

Harness spans (sweep progress; also ``t=0.0``, ordered by ``seq`` —
the live status feed of ``repro sweep --status-out`` folds these)
    * ``harness.sweep.start``        — a sweep batch began
      (``cells``, ``jobs``)
    * ``harness.sweep.finish``       — the batch completed
      (``cells``, ``cells_run``)
    * ``harness.cell.start``         — one cell (or shard sub-cell) was
      dispatched to a worker (``cell``, ``index``, ``total``,
      ``attempt``)
    * ``harness.cell.finish``        — the cell's result landed
      (``cell``, ``index``, ``events``, ``wall_s``)
    * ``harness.checkpoint.publish`` — the checkpoint journal was
      atomically republished (``cells``)
    * ``harness.shard.merge``        — shard partials were merged into
      one result (``policy``, ``n_disks``, ``shards``, ``wall_s``)

The constants exist so consumers and tests never hard-code strings;
producers import them too, keeping the taxonomy single-sourced.
"""

from __future__ import annotations

from typing import Any, NamedTuple

__all__ = [
    "ALL_EVENT_TYPES",
    "TraceEvent",
    "REQUEST_SUBMIT", "REQUEST_DISPATCH", "REQUEST_COMPLETE",
    "REQUEST_FAIL", "REQUEST_REDIRECT", "REQUEST_RETRY",
    "REQUEST_RECONSTRUCT",
    "DISK_TRANSITION_BEGIN", "DISK_TRANSITION_END", "DISK_REPLACE",
    "FAULT_INJECT", "FAULT_DATA_LOSS",
    "FAULT_REBUILD_START", "FAULT_REBUILD_COMPLETE",
    "FAULT_DOMAIN_OUTAGE", "REDUNDANCY_GROUP_STATE",
    "POLICY_SPIN_DOWN", "POLICY_SPIN_UP",
    "POLICY_CACHE_HIT", "POLICY_CACHE_MISS", "POLICY_CACHE_INSERT",
    "POLICY_EPOCH", "POLICY_MIGRATE", "POLICY_STRIPE_FANOUT",
    "ENGINE_START", "ENGINE_STOP",
    "HARNESS_CHECKPOINT_HIT", "HARNESS_CELL_RETRY", "HARNESS_CELL_TIMEOUT",
    "HARNESS_CELL_SALVAGE", "HARNESS_POOL_RESPAWN",
    "HARNESS_SWEEP_START", "HARNESS_SWEEP_FINISH",
    "HARNESS_CELL_START", "HARNESS_CELL_FINISH",
    "HARNESS_CHECKPOINT_PUBLISH", "HARNESS_SHARD_MERGE",
]

REQUEST_SUBMIT = "request.submit"
REQUEST_DISPATCH = "request.dispatch"
REQUEST_COMPLETE = "request.complete"
REQUEST_FAIL = "request.fail"
REQUEST_REDIRECT = "request.redirect"
REQUEST_RETRY = "request.retry"
REQUEST_RECONSTRUCT = "request.reconstruct"

DISK_TRANSITION_BEGIN = "disk.transition.begin"
DISK_TRANSITION_END = "disk.transition.end"
DISK_REPLACE = "disk.replace"

FAULT_INJECT = "fault.inject"
FAULT_DATA_LOSS = "fault.data_loss"
FAULT_REBUILD_START = "fault.rebuild.start"
FAULT_REBUILD_COMPLETE = "fault.rebuild.complete"
FAULT_DOMAIN_OUTAGE = "fault.domain.outage"

REDUNDANCY_GROUP_STATE = "redundancy.group.state"

POLICY_SPIN_DOWN = "policy.spin_down"
POLICY_SPIN_UP = "policy.spin_up"
POLICY_CACHE_HIT = "policy.cache.hit"
POLICY_CACHE_MISS = "policy.cache.miss"
POLICY_CACHE_INSERT = "policy.cache.insert"
POLICY_EPOCH = "policy.epoch"
POLICY_MIGRATE = "policy.migrate"
POLICY_STRIPE_FANOUT = "policy.stripe.fanout"

ENGINE_START = "engine.start"
ENGINE_STOP = "engine.stop"

HARNESS_CHECKPOINT_HIT = "harness.checkpoint.hit"
HARNESS_CELL_RETRY = "harness.cell.retry"
HARNESS_CELL_TIMEOUT = "harness.cell.timeout"
HARNESS_CELL_SALVAGE = "harness.cell.salvage"
HARNESS_POOL_RESPAWN = "harness.pool.respawn"

HARNESS_SWEEP_START = "harness.sweep.start"
HARNESS_SWEEP_FINISH = "harness.sweep.finish"
HARNESS_CELL_START = "harness.cell.start"
HARNESS_CELL_FINISH = "harness.cell.finish"
HARNESS_CHECKPOINT_PUBLISH = "harness.checkpoint.publish"
HARNESS_SHARD_MERGE = "harness.shard.merge"

#: Every event type the instrumented layers can emit.
ALL_EVENT_TYPES: frozenset[str] = frozenset({
    REQUEST_SUBMIT, REQUEST_DISPATCH, REQUEST_COMPLETE,
    REQUEST_FAIL, REQUEST_REDIRECT, REQUEST_RETRY,
    REQUEST_RECONSTRUCT,
    DISK_TRANSITION_BEGIN, DISK_TRANSITION_END, DISK_REPLACE,
    FAULT_INJECT, FAULT_DATA_LOSS,
    FAULT_REBUILD_START, FAULT_REBUILD_COMPLETE,
    FAULT_DOMAIN_OUTAGE, REDUNDANCY_GROUP_STATE,
    POLICY_SPIN_DOWN, POLICY_SPIN_UP,
    POLICY_CACHE_HIT, POLICY_CACHE_MISS, POLICY_CACHE_INSERT,
    POLICY_EPOCH, POLICY_MIGRATE, POLICY_STRIPE_FANOUT,
    ENGINE_START, ENGINE_STOP,
    HARNESS_CHECKPOINT_HIT, HARNESS_CELL_RETRY, HARNESS_CELL_TIMEOUT,
    HARNESS_CELL_SALVAGE, HARNESS_POOL_RESPAWN,
    HARNESS_SWEEP_START, HARNESS_SWEEP_FINISH,
    HARNESS_CELL_START, HARNESS_CELL_FINISH,
    HARNESS_CHECKPOINT_PUBLISH, HARNESS_SHARD_MERGE,
})


class TraceEvent(NamedTuple):
    """One structured trace record.

    A NamedTuple (not a dataclass): events are allocated once per
    emission on instrumented hot paths, and tuple construction is the
    cheapest structured record CPython offers.

    Attributes
    ----------
    seq:
        Bus-assigned monotone sequence number; with ``time`` it gives a
        total order identical to the kernel's dispatch order.
    time:
        Simulated seconds at emission.
    type:
        One of the taxonomy constants above.
    data:
        Flat JSON-serializable payload (see the module docstring for
        the canonical fields per type).
    """

    seq: int
    time: float
    type: str
    data: dict[str, Any]
