"""Logging setup for the library's progress/diagnostic channel.

Library modules log through child loggers of the ``repro`` root logger
(``repro.sweep`` for per-cell sweep progress, ``repro.obs`` for
exporter diagnostics).  Per library convention the root ``repro``
logger carries a ``NullHandler`` — embedding applications hear nothing
unless they opt in — and :func:`setup_logging` is the CLI's opt-in:
one stderr handler with a terse time-less format (CLI output must stay
deterministic-ish and diffable).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["get_logger", "setup_logging", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

#: Marker attached to handlers installed by :func:`setup_logging`, so
#: repeated calls reconfigure instead of stacking duplicate handlers.
_HANDLER_FLAG = "_repro_obs_handler"

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A child logger under the ``repro`` namespace.

    ``get_logger("sweep")`` and ``get_logger("repro.sweep")`` name the
    same logger.
    """
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def setup_logging(level: int = logging.INFO, *,
                  stream: Optional[TextIO] = None) -> logging.Logger:
    """Route ``repro.*`` log records to ``stream`` (default stderr).

    Idempotent: calling again replaces the previously installed handler
    (and its level) instead of adding another one.  Returns the root
    ``repro`` logger so callers can tweak further.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    root.setLevel(level)
    return root
