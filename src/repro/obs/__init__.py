"""repro.obs — the simulation telemetry layer.

Four cooperating pieces, all strictly opt-in (a run that attaches none
of them executes the exact pre-observability hot path):

* :class:`TraceBus` + the event taxonomy (:mod:`repro.obs.events`) —
  typed structured events emitted by the kernel, drives, array,
  policies, and fault injector;
* :class:`MetricsRegistry` + :class:`DiskSampler` — counters/gauges/
  histograms and the periodic per-disk time-series snapshot
  (utilization, temperature, speed, queue depth, cumulative energy);
* :class:`KernelProfiler` — per-handler event-loop timing attached to
  the :class:`~repro.sim.engine.Simulator`;
* exporters (:mod:`repro.obs.export`) and rollups
  (:mod:`repro.obs.summarize`) — deterministic JSONL traces, CSV/JSON
  time-series, and the ``repro obs summarize`` tables.

``ObsConfig`` bundles the per-run switches and travels inside
:class:`~repro.experiments.parallel.RunSpec` for parallel sweeps.
"""

from repro.obs.bus import TraceBus
from repro.obs.config import ObsConfig
from repro.obs.events import ALL_EVENT_TYPES, TraceEvent
from repro.obs.export import (
    JsonlTraceWriter,
    event_to_json,
    read_trace,
    timeseries_to_csv_text,
    write_metrics_json,
    write_timeseries,
)
from repro.obs.log import get_logger, setup_logging
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import HandlerProfile, KernelProfiler, ProfileSummary
from repro.obs.federate import (
    federate_registries,
    merge_trace_files,
    shard_segment_path,
)
from repro.obs.sampler import SAMPLE_COLUMNS, DiskSampler, TimeSeries
from repro.obs.status import (
    SweepStatusWriter,
    format_status,
    read_status,
)
from repro.obs.summarize import (
    DiskRollup,
    TraceSummary,
    format_summary,
    summarize_records,
    summarize_trace,
    summarize_traces,
)

__all__ = [
    "ALL_EVENT_TYPES",
    "Counter",
    "DiskRollup",
    "DiskSampler",
    "Gauge",
    "HandlerProfile",
    "Histogram",
    "JsonlTraceWriter",
    "KernelProfiler",
    "MetricsRegistry",
    "ObsConfig",
    "ProfileSummary",
    "SAMPLE_COLUMNS",
    "SweepStatusWriter",
    "TimeSeries",
    "TraceBus",
    "TraceEvent",
    "TraceSummary",
    "event_to_json",
    "federate_registries",
    "format_status",
    "format_summary",
    "get_logger",
    "merge_trace_files",
    "read_status",
    "read_trace",
    "setup_logging",
    "shard_segment_path",
    "summarize_records",
    "summarize_trace",
    "summarize_traces",
    "timeseries_to_csv_text",
    "write_metrics_json",
    "write_timeseries",
]
