"""The observability switchboard: what one simulation run records.

``ObsConfig`` is frozen plain data so it rides inside a
:class:`~repro.experiments.parallel.RunSpec` across the process-pool
boundary; the runner materializes the actual bus/sampler/profiler from
it per cell.  ``ObsConfig()`` (all fields off) is equivalent to passing
no config at all — the runner attaches nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.util.validation import require_positive

__all__ = ["ObsConfig"]


@dataclass(frozen=True, slots=True)
class ObsConfig:
    """Per-run observability settings.

    Attributes
    ----------
    trace_path:
        Write the structured event trace to this JSONL file.
    metrics_path:
        Write the sampled per-disk time-series here (CSV, or a
        structured JSON document when the suffix is ``.json``).  Implies
        sampling at :attr:`sample_interval_s` or its default.
    sample_interval_s:
        Simulated seconds between per-disk time-series samples; ``None``
        disables the sampler (unless :attr:`metrics_path` forces it on
        at :data:`DEFAULT_SAMPLE_INTERVAL_S`).
    profile:
        Attach a kernel profiler: per-handler dispatch timings land in
        ``SimulationResult.profile``.
    """

    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    sample_interval_s: Optional[float] = None
    profile: bool = False

    #: Sampler cadence used when metrics output is requested without an
    #: explicit interval.
    DEFAULT_SAMPLE_INTERVAL_S = 60.0

    def __post_init__(self) -> None:
        if self.sample_interval_s is not None:
            require_positive(self.sample_interval_s, "sample_interval_s")

    @property
    def wants_sampler(self) -> bool:
        """Whether this config requires a :class:`DiskSampler`."""
        return self.sample_interval_s is not None or self.metrics_path is not None

    @property
    def effective_sample_interval_s(self) -> float:
        """The sampler cadence this config implies."""
        if self.sample_interval_s is not None:
            return self.sample_interval_s
        return self.DEFAULT_SAMPLE_INTERVAL_S

    @property
    def enabled(self) -> bool:
        """Whether any observability feature is on."""
        return (self.trace_path is not None or self.wants_sampler
                or self.profile)
