"""Periodic per-disk time-series sampling.

A :class:`DiskSampler` rides the kernel as a
:class:`~repro.sim.timers.PeriodicTask`: every ``interval_s`` simulated
seconds it flushes each drive's ledgers and snapshots the quantities
the PRESS analysis and capacity planning care about — utilization,
temperature, spindle speed, phase, queue depth, and cumulative energy.
The samples freeze into a :class:`TimeSeries` (plain tuples, picklable)
that the runner attaches to the :class:`SimulationResult`, so parallel
sweep cells carry their telemetry across the process-pool boundary.

Numerical note: sampling calls :meth:`TwoSpeedDrive.finalize` at each
tick, splitting the energy/thermal accounting intervals at the sample
instants.  Both ledgers are closed-form over an interval, so the split
is exact in real arithmetic; float summation can differ in the last
ulp versus an unsampled run.  That is why sampling is opt-in: with no
sampler installed the ledgers see exactly the same interval sequence
as an uninstrumented build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.sim.timers import PeriodicTask
from repro.util.validation import require, require_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.disk.array import DiskArray
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import Simulator

__all__ = ["DiskSampler", "TimeSeries", "SAMPLE_COLUMNS"]

#: Column order of every sample row (one row per disk per tick).
SAMPLE_COLUMNS: tuple[str, ...] = (
    "time_s", "disk", "utilization_pct", "temperature_c", "speed",
    "phase", "queue_depth", "energy_j",
)

#: Event priority of the sampling tick: after same-instant completions
#: (0), transitions (1), and policy timers (10/20), so a sample reads
#: the settled post-event state of its instant.
_PRIO_SAMPLE = 90

#: Rendered names for the SoA backend's speed/phase codes.  Mirrors
#: :data:`repro.disk.state.SPEED_NAMES` / ``PHASE_NAMES`` (duplicated
#: here because the obs layer must not import repro.disk — the
#: cross-backend equivalence suite asserts the two stay in sync).
_SPEED_NAMES: tuple[str, ...] = ("low", "high")
_PHASE_NAMES: tuple[str, ...] = ("idle", "busy", "transitioning", "failed")


@dataclass(frozen=True, slots=True)
class TimeSeries:
    """Frozen per-disk telemetry: ``rows`` follow :data:`SAMPLE_COLUMNS`.

    Rows are ordered by (time, disk).  Built from plain tuples so the
    object pickles across the parallel sweep executor unchanged.
    """

    interval_s: float
    columns: tuple[str, ...] = SAMPLE_COLUMNS
    rows: tuple[tuple, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def n_samples(self) -> int:
        """Number of sampling instants (ticks) captured."""
        times = {row[0] for row in self.rows}
        return len(times)

    def column(self, name: str, *, disk: Optional[int] = None) -> list:
        """One column as a list, optionally restricted to one disk."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows
                if disk is None or row[1] == disk]

    def per_disk(self) -> dict[int, list[tuple]]:
        """Rows grouped by disk id (insertion order = time order)."""
        out: dict[int, list[tuple]] = {}
        for row in self.rows:
            out.setdefault(row[1], []).append(row)
        return out

    def as_records(self) -> list[dict[str, object]]:
        """Rows as dicts (JSON-friendly)."""
        return [dict(zip(self.columns, row)) for row in self.rows]


class DiskSampler:
    """Snapshots every drive's operating point on a fixed sim-time cadence.

    Parameters
    ----------
    sim, array:
        Kernel and the observed array.
    interval_s:
        Simulated seconds between samples.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when given,
        per-disk gauges (``disk{d}.utilization_pct`` etc.) and the
        array-level ``array.energy_j`` counter track the latest sample.
    disk_offset:
        Added to every local disk id in rows and gauge names.  A shard
        worker passes its plan's offset so the sampled series and the
        registry speak *global* disk ids, making per-shard telemetry
        federate without a rename pass (0 for unsharded runs).
    """

    def __init__(self, sim: "Simulator", array: "DiskArray", interval_s: float, *,
                 registry: Optional["MetricsRegistry"] = None,
                 disk_offset: int = 0) -> None:
        require_positive(interval_s, "interval_s")
        require(disk_offset >= 0,
                f"disk_offset must be >= 0, got {disk_offset}")
        self._sim = sim
        self._array = array
        self.interval_s = float(interval_s)
        self._registry = registry
        self._offset = int(disk_offset)
        self._rows: list[tuple] = []
        self._task: Optional[PeriodicTask] = None

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Arm the periodic sampling tick (first sample after one interval)."""
        if self._task is None:
            self._task = PeriodicTask(self._sim, self.interval_s, self._sample,
                                      priority=_PRIO_SAMPLE)

    def shutdown(self) -> None:
        """Stop sampling; the collected series stays readable."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    @property
    def samples_taken(self) -> int:
        """Sampling ticks fired so far."""
        return self._task.ticks_fired if self._task is not None else 0

    # ------------------------------------------------------------------
    def sample_now(self) -> None:
        """Take one snapshot at the current simulated time.

        The periodic tick calls this; the runner also calls it once at
        end-of-run so the series always closes with the final state.
        """
        now = self._sim.now
        registry = self._registry
        rows = self._rows
        state = getattr(self._array, "state", None)
        if state is not None:
            # SoA backend: flush the ledgers once, then read the whole
            # array from the shared buffers — one copy per column via
            # the snapshot instead of a per-disk attribute walk.  Every
            # value is bit-identical to the per-drive reads below, so
            # the exported JSONL is byte-identical across backends.
            self._array.finalize()
            snap = state.snapshot(now)
            utils = snap.utilization_pct.tolist()
            temps = snap.temperature_c.tolist()
            speeds = snap.speed_code.tolist()
            phases = snap.phase_code.tolist()
            queues = snap.queue_depth.tolist()
            energies = snap.energy_j.tolist()
            offset = self._offset
            for d in range(state.n_disks):
                util, temp = utils[d], temps[d]
                queue, energy = queues[d], energies[d]
                g = offset + d
                rows.append((now, g, util, temp, _SPEED_NAMES[speeds[d]],
                             _PHASE_NAMES[phases[d]], queue, energy))
                if registry is not None:
                    registry.gauge(f"disk{g}.utilization_pct").set(util)
                    registry.gauge(f"disk{g}.temperature_c").set(temp)
                    registry.gauge(f"disk{g}.queue_depth").set(queue)
                    registry.gauge(f"disk{g}.energy_j").set(energy)
            if registry is not None:
                registry.gauge("array.energy_j").set(self._array.total_energy_j())
                registry.counter("sampler.ticks").inc()
            return
        for drive in self._array.drives:
            drive.finalize()
            util = drive.utilization() * 100.0
            temp = drive.thermal.temperature_c
            speed = drive.speed.name.lower()
            phase = drive.phase.value
            queue = drive.queue_length
            energy = drive.energy.total_energy_j
            g = self._offset + drive.disk_id
            rows.append((now, g, util, temp, speed, phase,
                         queue, energy))
            if registry is not None:
                registry.gauge(f"disk{g}.utilization_pct").set(util)
                registry.gauge(f"disk{g}.temperature_c").set(temp)
                registry.gauge(f"disk{g}.queue_depth").set(queue)
                registry.gauge(f"disk{g}.energy_j").set(energy)
        if registry is not None:
            registry.gauge("array.energy_j").set(self._array.total_energy_j())
            registry.counter("sampler.ticks").inc()

    def _sample(self, _tick: int) -> None:
        self.sample_now()

    # ------------------------------------------------------------------
    def series(self) -> TimeSeries:
        """Freeze everything sampled so far into a :class:`TimeSeries`."""
        return TimeSeries(interval_s=self.interval_s,
                          rows=tuple(self._rows))
