"""Federation of per-shard telemetry into one canonical artifact set.

A sharded cell (:mod:`repro.experiments.shard`) runs one kernel — and
therefore one :class:`~repro.obs.bus.TraceBus`, one
:class:`~repro.obs.sampler.DiskSampler`, one
:class:`~repro.obs.metrics.MetricsRegistry` — per shard.  Each shard's
events already carry *global* disk/file ids (remapped at emission via
the bus's ``id_maps``) plus a ``shard`` tag, and land in an atomic
per-shard JSONL segment.  This module turns those partials back into
the single-run shape every downstream consumer expects:

:func:`merge_trace_files`
    Deterministic k-way merge of the segments, ordered by
    ``(time, shard, seq)`` — simulated time first, then shard index,
    then the shard-local emission order.  The merged records drop the
    ``shard`` tag and are renumbered with one global ``seq``, so the
    output bytes depend only on the events themselves: byte-identical
    across ``--jobs`` values, and across shard counts whenever the
    event *timestamps* are shard-count-invariant (true for disk-local
    policies; cross-shard ties fall back to shard order, which is
    global-disk-group order).

:func:`federate_registries`
    Typed merge of registry snapshots (``as_dict()`` shapes): counters
    sum, gauges take the value from the last snapshot time (ties break
    toward the highest shard index), histograms merge bin-exactly —
    the same exact-integer discipline as the response histogram in
    :func:`~repro.experiments.shard.merge_shard_results`.

:func:`shard_segment_path`
    The naming convention tying a cell's trace path to its per-shard
    segments (``trace.jsonl`` -> ``trace.shard0007.jsonl``), shared by
    the shard worker, the merge, and ``repro obs summarize`` globs.
"""

from __future__ import annotations

import heapq
import json
import os
from operator import itemgetter
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.util.validation import require

__all__ = [
    "shard_segment_path",
    "merge_trace_files",
    "federate_registries",
    "SynthesizedEvent",
]

PathLike = Union[str, Path]

#: One synthesized lifecycle event: ``(type, time_s, payload)``.  The
#: merge assigns its global ``seq``; the payload is emitted key-sorted.
SynthesizedEvent = tuple[str, float, dict]


def shard_segment_path(trace_path: PathLike, shard_index: int) -> Path:
    """Per-shard segment path for one cell's trace output.

    ``trace.jsonl`` -> ``trace.shard0007.jsonl``: the zero-padded index
    keeps lexicographic order equal to shard order, so a
    ``trace.shard*.jsonl`` glob enumerates segments in merge order.
    """
    require(shard_index >= 0, f"shard_index must be >= 0, got {shard_index}")
    p = Path(trace_path)
    return p.with_name(f"{p.stem}.shard{shard_index:04d}{p.suffix}")


def _record_line(seq: int, time_s: float, type_: str,
                 payload: Mapping[str, object]) -> str:
    """Canonical single-line record: seq/t/type lead, payload sorted.

    Mirrors :func:`repro.obs.export.event_to_json` byte-for-byte so a
    merged trace is indistinguishable from a directly-written one.
    """
    record: dict[str, object] = {"seq": seq, "t": time_s, "type": type_}
    for key in sorted(payload):
        record[key] = payload[key]
    return json.dumps(record, separators=(",", ":"), allow_nan=True)


def _segment_records(path: Path, fallback_shard: int,
                     ) -> Iterator[tuple[tuple[float, int, int], dict]]:
    """Yield ``((t, shard, seq), record)`` for one segment, in file order.

    Within a segment, records are already sorted by ``(t, seq)`` — the
    bus assigns ``seq`` in kernel dispatch order — and the shard tag is
    constant, so each segment is a sorted run for the k-way merge.
    """
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a JSON trace record: {exc}") from exc
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError(
                    f"{path}:{lineno}: trace record missing 'type' field")
            key = (float(record["t"]),
                   int(record.get("shard", fallback_shard)),
                   int(record.get("seq", 0)))
            yield key, record


def merge_trace_files(segments: Sequence[PathLike], out_path: PathLike, *,
                      lead: Iterable[SynthesizedEvent] = (),
                      tail: Iterable[SynthesizedEvent] = ()) -> int:
    """K-way merge per-shard JSONL segments into one canonical trace.

    Records across segments interleave by ``(time, shard, seq)``; the
    ``shard`` tag is stripped and ``seq`` renumbered globally, so the
    merged bytes are independent of how many shards (or jobs) produced
    the segments.  ``lead``/``tail`` are synthesized lifecycle events
    (e.g. one global ``engine.start``/``engine.stop`` replacing the
    per-shard ones that were never emitted) written before/after the
    data records, sharing the global ``seq`` space.

    Streaming end to end (constant memory in the trace length) and
    atomic: the merged trace appears at ``out_path`` only when complete.
    Returns the number of *data* records merged (lead/tail excluded).
    """
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    tmp = out.with_name(f"{out.name}.{os.getpid()}.tmp")
    runs = [_segment_records(Path(p), i) for i, p in enumerate(segments)]
    seq = 0
    merged = 0
    try:
        with tmp.open("w", encoding="utf-8", newline="\n") as fh:  # repro: allow[IO001] streams to a .tmp sibling; published whole via os.replace below
            for type_, time_s, payload in lead:
                fh.write(_record_line(seq, time_s, type_, payload))
                fh.write("\n")
                seq += 1
            for _key, record in heapq.merge(*runs, key=itemgetter(0)):
                payload = {k: v for k, v in record.items()
                           if k not in ("seq", "t", "type", "shard")}
                fh.write(_record_line(seq, record["t"], record["type"], payload))
                fh.write("\n")
                seq += 1
                merged += 1
            for type_, time_s, payload in tail:
                fh.write(_record_line(seq, time_s, type_, payload))
                fh.write("\n")
                seq += 1
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    os.replace(tmp, out)
    return merged


# ----------------------------------------------------------------------
# metrics federation
# ----------------------------------------------------------------------
def _merge_histograms(name: str, entries: list[tuple[int, Mapping[str, object]]],
                      ) -> dict[str, object]:
    """Exact-integer bin merge; bounds must match across shards."""
    bounds = list(entries[0][1]["bounds"])  # type: ignore[arg-type]
    for index, entry in entries[1:]:
        require(list(entry["bounds"]) == bounds,  # type: ignore[arg-type]
                f"metric {name!r}: histogram bounds differ across shards "
                f"(shard {entries[0][0]} vs shard {index})")
    counts = [list(e["bucket_counts"]) for _, e in entries]  # type: ignore[arg-type]
    merged_counts = [sum(col) for col in zip(*counts)]
    mins = [e["min"] for _, e in entries if e["min"] is not None]
    maxes = [e["max"] for _, e in entries if e["max"] is not None]
    return {
        "type": "histogram",
        "count": sum(int(e["count"]) for _, e in entries),  # type: ignore[arg-type]
        "sum": sum(float(e["sum"]) for _, e in entries),  # type: ignore[arg-type]
        "min": min(mins) if mins else None,  # type: ignore[type-var]
        "max": max(maxes) if maxes else None,  # type: ignore[type-var]
        "bounds": bounds,
        "bucket_counts": merged_counts,
    }


def federate_registries(snapshots: Sequence[Mapping[str, Mapping[str, object]]],
                        *, at: Optional[Sequence[float]] = None,
                        ) -> dict[str, dict[str, object]]:
    """Merge per-shard registry snapshots into one typed registry dict.

    ``snapshots`` are ``MetricsRegistry.as_dict()`` outputs in shard
    order; ``at`` optionally gives each snapshot's capture time (a
    shard's local end time).  Federation is typed:

    * **counters** sum across shards;
    * **gauges** take the value from the snapshot with the latest
      capture time (ties — and the no-``at`` case — break toward the
      highest shard index, a deterministic total order);
    * **histograms** merge bin-exactly (bounds must match) with exact
      integer bucket counts, like the response histogram in
      :func:`~repro.experiments.shard.merge_shard_results`.

    A metric may appear in any subset of shards (per-disk gauges are
    naturally disjoint across shards); conflicting types for one name
    are an error.
    """
    require(len(snapshots) >= 1, "need at least one registry snapshot")
    if at is not None:
        require(len(at) == len(snapshots),
                f"need one capture time per snapshot, got {len(at)} "
                f"for {len(snapshots)}")
    out: dict[str, dict[str, object]] = {}
    for name in sorted({name for snap in snapshots for name in snap}):
        entries = [(i, snap[name]) for i, snap in enumerate(snapshots)
                   if name in snap]
        kinds = sorted({str(e["type"]) for _, e in entries})
        require(len(kinds) == 1,
                f"metric {name!r} has conflicting types across shards: {kinds}")
        kind = kinds[0]
        if kind == "counter":
            out[name] = {"type": "counter",
                         "value": sum(float(e["value"]) for _, e in entries)}  # type: ignore[arg-type]
        elif kind == "gauge":
            _, winner = max(entries,
                            key=lambda p: (at[p[0]] if at is not None else 0.0,
                                           p[0]))
            out[name] = {"type": "gauge", "value": winner["value"]}
        elif kind == "histogram":
            out[name] = _merge_histograms(name, entries)
        else:
            raise ValueError(f"metric {name!r}: unknown type {kind!r}")
    return out
