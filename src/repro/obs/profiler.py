"""Kernel profiling: where does event-loop time actually go?

The :class:`~repro.sim.engine.Simulator` accepts a profiler via
:meth:`~repro.sim.engine.Simulator.set_profiler`; while one is attached
the drain loop times every dispatched action with ``perf_counter`` and
calls :meth:`KernelProfiler.record` with the handler's qualified name.
Handlers group naturally by qualname — ``TwoSpeedDrive._complete``,
``run_simulation.<locals>.dispatch_next``, ``PeriodicTask._fire`` — which
is exactly the "per event type" breakdown the ROADMAP's perf work needs.

The attached-profiler loop is a *separate* code path: with no profiler
the kernel runs the original branch-free drain, so profiling-off runs
pay nothing (and stay inside the throughput regression gate).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

__all__ = ["HandlerProfile", "KernelProfiler", "ProfileSummary",
           "DEFAULT_HANDLER_BUCKETS_S"]

#: Log-spaced per-dispatch wall-clock buckets (seconds): 1 us .. 1 s.
DEFAULT_HANDLER_BUCKETS_S: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
)


@dataclass(frozen=True, slots=True)
class HandlerProfile:
    """Frozen per-handler timing rollup (picklable)."""

    handler: str
    calls: int
    total_s: float
    max_s: float
    #: Counts per bucket of :data:`DEFAULT_HANDLER_BUCKETS_S` plus one
    #: overflow bucket at the end.
    bucket_counts: tuple[int, ...]

    @property
    def mean_us(self) -> float:
        """Mean per-call wall-clock in microseconds."""
        return self.total_s / self.calls * 1e6 if self.calls else 0.0

    def summary_row(self) -> dict[str, object]:
        """Flat dict for tabular reporting."""
        return {
            "handler": self.handler,
            "calls": self.calls,
            "total_ms": round(self.total_s * 1e3, 2),
            "mean_us": round(self.mean_us, 2),
            "max_us": round(self.max_s * 1e6, 1),
        }


@dataclass(frozen=True, slots=True)
class ProfileSummary:
    """Frozen whole-run kernel profile attached to a SimulationResult."""

    events_executed: int
    wall_clock_s: float
    #: Per-handler rollups, heaviest total time first.
    handlers: tuple[HandlerProfile, ...]
    bucket_bounds_s: tuple[float, ...] = DEFAULT_HANDLER_BUCKETS_S

    @property
    def events_per_sec(self) -> float:
        """Dispatch throughput over the profiled portion of the run."""
        return self.events_executed / self.wall_clock_s if self.wall_clock_s > 0 else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-ready plain-data form (sorted, deterministic layout)."""
        return {
            "events_executed": self.events_executed,
            "wall_clock_s": self.wall_clock_s,
            "events_per_sec": self.events_per_sec,
            "bucket_bounds_s": list(self.bucket_bounds_s),
            "handlers": [
                {"handler": h.handler, "calls": h.calls,
                 "total_s": h.total_s, "max_s": h.max_s,
                 "bucket_counts": list(h.bucket_counts)}
                for h in self.handlers
            ],
        }


class _HandlerStat:
    """Mutable accumulator for one handler qualname."""

    __slots__ = ("calls", "total_s", "max_s", "bucket_counts")

    def __init__(self, n_buckets: int) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.bucket_counts = [0] * (n_buckets + 1)


class KernelProfiler:
    """Accumulates per-handler dispatch timings for one kernel run.

    The kernel calls :meth:`record` once per dispatched event — the
    accumulator is three adds, a compare, and a bisect, keeping the
    profiled path usable on multi-hundred-thousand-event runs.
    """

    def __init__(self,
                 bucket_bounds_s: Sequence[float] = DEFAULT_HANDLER_BUCKETS_S) -> None:
        self._bounds = tuple(float(b) for b in bucket_bounds_s)
        self._stats: dict[str, _HandlerStat] = {}
        self._total_s = 0.0
        self._events = 0

    # ------------------------------------------------------------------
    def record(self, handler: str, elapsed_s: float) -> None:
        """Charge one dispatch of ``handler`` that took ``elapsed_s``."""
        stat = self._stats.get(handler)
        if stat is None:
            stat = _HandlerStat(len(self._bounds))
            self._stats[handler] = stat
        stat.calls += 1
        stat.total_s += elapsed_s
        if elapsed_s > stat.max_s:
            stat.max_s = elapsed_s
        stat.bucket_counts[bisect.bisect_left(self._bounds, elapsed_s)] += 1
        self._total_s += elapsed_s
        self._events += 1

    # ------------------------------------------------------------------
    @property
    def events_recorded(self) -> int:
        """Dispatches recorded so far."""
        return self._events

    @property
    def handler_names(self) -> list[str]:
        """Handlers seen so far, sorted by name."""
        return sorted(self._stats)

    def summary(self, *, wall_clock_s: float | None = None) -> ProfileSummary:
        """Freeze into a :class:`ProfileSummary`.

        ``wall_clock_s`` defaults to the summed in-handler time; pass
        the enclosing run's wall clock for a throughput figure that
        includes the kernel's own (heap) overhead.
        """
        wall = self._total_s if wall_clock_s is None else wall_clock_s
        handlers = tuple(sorted(
            (HandlerProfile(handler=name, calls=s.calls, total_s=s.total_s,
                            max_s=s.max_s, bucket_counts=tuple(s.bucket_counts))
             for name, s in self._stats.items()),
            key=lambda h: (-h.total_s, h.handler)))
        return ProfileSummary(events_executed=self._events, wall_clock_s=wall,
                              handlers=handlers, bucket_bounds_s=self._bounds)
