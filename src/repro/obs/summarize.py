"""Trace rollups: turn a JSONL event stream back into readable tables.

``repro obs summarize <trace.jsonl>`` is built on this module: it reads
a trace written by :class:`~repro.obs.export.JsonlTraceWriter` and
aggregates it two ways —

* **per event type**: count, first/last simulated time;
* **per disk**: every event carrying a ``disk`` field is charged to
  that disk, with the request-lifecycle counters (submits, dispatches,
  completions, failures), transition count, and served MB broken out.

Pure functions over plain data, so the tests round-trip a simulation
through the writer and assert the rollups match the run's own metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Union

from repro.obs import events as ev
from repro.obs.export import read_trace
from repro.util.tables import format_table

__all__ = ["DiskRollup", "TraceSummary", "summarize_records",
           "summarize_trace", "summarize_traces", "format_summary"]

PathLike = Union[str, Path]


@dataclass(slots=True)
class DiskRollup:
    """Aggregated per-disk view of one trace."""

    disk: int
    events: int = 0
    submits: int = 0
    dispatches: int = 0
    completions: int = 0
    failures: int = 0
    transitions: int = 0
    mb_served: float = 0.0
    #: summed queue wait of dispatched jobs (from ``request.dispatch``).
    total_wait_s: float = 0.0

    @property
    def mean_wait_ms(self) -> float:
        """Mean queueing delay of dispatched jobs, milliseconds."""
        return (self.total_wait_s / self.dispatches * 1e3
                if self.dispatches else 0.0)

    def summary_row(self) -> dict[str, object]:
        return {
            "disk": self.disk, "events": self.events,
            "submits": self.submits, "completions": self.completions,
            "failures": self.failures, "transitions": self.transitions,
            "MB_served": round(self.mb_served, 1),
            "mean_wait_ms": round(self.mean_wait_ms, 3),
        }


@dataclass(slots=True)
class TraceSummary:
    """Everything ``obs summarize`` reports about one trace file."""

    total_events: int = 0
    duration_s: float = 0.0
    #: event type -> (count, first time, last time)
    by_type: dict[str, tuple[int, float, float]] = field(default_factory=dict)
    by_disk: dict[int, DiskRollup] = field(default_factory=dict)
    unknown_types: set[str] = field(default_factory=set)

    def type_rows(self) -> list[dict[str, object]]:
        """Per-event-type table rows, sorted by type name."""
        return [{"event": name, "count": count,
                 "first_s": round(first, 3), "last_s": round(last, 3)}
                for name, (count, first, last) in sorted(self.by_type.items())]

    def disk_rows(self) -> list[dict[str, object]]:
        """Per-disk table rows, sorted by disk id."""
        return [self.by_disk[d].summary_row() for d in sorted(self.by_disk)]

    def to_json(self) -> dict[str, object]:
        """Machine-readable form for ``obs summarize --json`` (stable keys,
        deterministic ordering)."""
        return {
            "total_events": self.total_events,
            "duration_s": self.duration_s,
            "by_type": self.type_rows(),
            "by_disk": self.disk_rows(),
            "unknown_types": sorted(self.unknown_types),
        }


def summarize_records(records: Iterable[dict]) -> TraceSummary:
    """Aggregate parsed trace records (see module docstring)."""
    summary = TraceSummary()
    for record in records:
        etype = record["type"]
        t = float(record.get("t", 0.0))
        summary.total_events += 1
        if t > summary.duration_s:
            summary.duration_s = t
        count, first, last = summary.by_type.get(etype, (0, t, t))
        summary.by_type[etype] = (count + 1, min(first, t), max(last, t))
        if etype not in ev.ALL_EVENT_TYPES:
            summary.unknown_types.add(etype)

        disk = record.get("disk")
        if disk is None:
            continue
        rollup = summary.by_disk.get(disk)
        if rollup is None:
            rollup = summary.by_disk[disk] = DiskRollup(disk=disk)
        rollup.events += 1
        if etype == ev.REQUEST_SUBMIT:
            rollup.submits += 1
        elif etype == ev.REQUEST_DISPATCH:
            rollup.dispatches += 1
            rollup.total_wait_s += float(record.get("wait_s", 0.0))
        elif etype == ev.REQUEST_COMPLETE:
            rollup.completions += 1
            rollup.mb_served += float(record.get("size_mb", 0.0))
        elif etype == ev.REQUEST_FAIL:
            rollup.failures += 1
        elif etype == ev.DISK_TRANSITION_BEGIN:
            rollup.transitions += 1
    return summary


def summarize_trace(path: PathLike) -> TraceSummary:
    """Read a JSONL trace file and aggregate it."""
    return summarize_records(read_trace(path))


def summarize_traces(paths: Iterable[PathLike]) -> TraceSummary:
    """Aggregate several traces — e.g. per-shard segments — as one.

    The rollup is a pure reduction over records, so chaining files is
    exactly equivalent to summarizing their concatenation (per-shard
    segments already carry global disk ids, so the per-disk table is
    the array-wide view).
    """
    def _chained() -> Iterable[dict]:
        for path in paths:
            yield from read_trace(path)

    return summarize_records(_chained())


def format_summary(summary: TraceSummary, *, source: str = "trace") -> str:
    """Render a :class:`TraceSummary` as the CLI's aligned-table output."""
    parts = [f"{source}: {summary.total_events} events over "
             f"{summary.duration_s:.1f} simulated seconds"]
    if summary.by_type:
        parts.append("")
        parts.append(format_table(summary.type_rows(), title="per event type"))
    if summary.by_disk:
        parts.append("")
        parts.append(format_table(summary.disk_rows(), title="per disk"))
    if summary.unknown_types:
        parts.append("")
        parts.append("note: unknown event types present: "
                     + ", ".join(sorted(summary.unknown_types)))
    return "\n".join(parts)
