"""Exporters: JSONL event traces and CSV/JSON time-series files.

Byte-determinism contract: everything written here is a pure function
of the simulation's seeded state — no wall-clock timestamps, no object
ids, keys sorted, floats via ``repr`` (shortest round-trip) — so two
runs of the same configuration produce byte-identical files.  The
acceptance tests diff whole files on this guarantee.
"""

from __future__ import annotations

import csv
import io
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Union

from repro.obs.events import TraceEvent
from repro.util.atomicio import PARTIAL_SUFFIX, atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.sampler import TimeSeries

__all__ = ["JsonlTraceWriter", "event_to_json", "read_trace",
           "write_timeseries", "timeseries_to_csv_text", "write_metrics_json"]

PathLike = Union[str, Path]


def event_to_json(event: TraceEvent) -> str:
    """One event as a canonical single-line JSON record.

    ``seq``/``t``/``type`` lead, payload fields follow sorted — compact
    separators, no whitespace variance, deterministic bytes.
    """
    record = {"seq": event.seq, "t": event.time, "type": event.type}
    for key in sorted(event.data):
        record[key] = event.data[key]
    return json.dumps(record, separators=(",", ":"), allow_nan=True)


class JsonlTraceWriter:
    """Bus subscriber streaming events to a JSONL file.

    Usable as a context manager; always :meth:`close` (or exit the
    ``with`` block) before reading the file — lines are buffered.

    Crash-safety: events stream into ``<path>.<pid>.tmp`` and the file
    is renamed onto ``path`` only by a successful :meth:`close`, so a
    reader can never observe a torn trace.  A run that dies mid-stream
    should call :meth:`abort`, which quarantines the partial file as
    ``<path>.partial`` for inspection (exiting the ``with`` block on an
    exception does this automatically).

    Examples
    --------
    >>> bus = TraceBus(); writer = JsonlTraceWriter(path)   # doctest: +SKIP
    >>> bus.subscribe(writer)                               # doctest: +SKIP
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tmp_path = self.path.with_name(
            f"{self.path.name}.{os.getpid()}.tmp")
        self._file: io.TextIOWrapper | None = self._tmp_path.open(  # repro: allow[IO001] streams to a .tmp sibling; close() publishes with os.replace, abort() quarantines
            "w", encoding="utf-8", newline="\n")
        self.events_written = 0

    def __call__(self, event: TraceEvent) -> None:
        """The subscriber interface: serialize and buffer one event."""
        if self._file is None:
            raise ValueError(f"trace writer for {self.path} is closed")
        self._file.write(event_to_json(event))
        self._file.write("\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush, close, and atomically publish the trace (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None
            os.replace(self._tmp_path, self.path)

    def abort(self) -> None:
        """Close without publishing; quarantine the partial trace.

        Idempotent, and a no-op after a successful :meth:`close` — an
        already-published trace is complete and must stay in place.
        """
        if self._file is None:
            return
        self._file.close()
        self._file = None
        try:
            os.replace(self._tmp_path,
                       self.path.with_name(self.path.name + PARTIAL_SUFFIX))
        except OSError:  # best-effort: never mask the original failure
            pass

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def read_trace(path: PathLike) -> list[dict]:
    """Load a JSONL trace back into a list of dict records.

    Raises :class:`ValueError` naming the offending line on corrupt
    input, so CLI consumers get an actionable message instead of a raw
    ``JSONDecodeError``.
    """
    records: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a JSON trace record: {exc}") from exc
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError(
                    f"{path}:{lineno}: trace record missing 'type' field")
            records.append(record)
    return records


# ----------------------------------------------------------------------
# time-series
# ----------------------------------------------------------------------
def timeseries_to_csv_text(series: "TimeSeries") -> str:
    """Render a :class:`~repro.obs.sampler.TimeSeries` as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(series.columns)
    for row in series.rows:
        writer.writerow([repr(v) if isinstance(v, float) else v for v in row])
    return buf.getvalue()


def write_timeseries(series: "TimeSeries", path: PathLike) -> Path:
    """Write a time-series to ``path``: ``.json`` gets a structured JSON
    document, anything else (canonically ``.csv``) gets CSV.

    Atomic (tmp file + ``os.replace``): a killed process never leaves a
    truncated series where a plotting script expects a whole one."""
    target = Path(path)
    if target.suffix.lower() == ".json":
        doc = {"interval_s": series.interval_s,
               "columns": list(series.columns),
               "rows": [list(row) for row in series.rows]}
        text = json.dumps(doc, separators=(",", ":")) + "\n"
    else:
        text = timeseries_to_csv_text(series)
    return atomic_write_text(target, text)


def write_metrics_json(registry: "MetricsRegistry", path: PathLike) -> Path:
    """Dump a metrics registry as deterministic, indented JSON (atomic)."""
    text = json.dumps(registry.as_dict(), indent=2, sort_keys=True) + "\n"
    return atomic_write_text(path, text)
