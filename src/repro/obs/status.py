"""Live sweep status: a crash-safe JSON feed folded from harness events.

``repro sweep --status-out status.json`` subscribes a
:class:`SweepStatusWriter` to the harness :class:`~repro.obs.bus.TraceBus`.
Every ``harness.*`` span event updates an in-memory rollup —
per-cell/per-shard progress, events/sec, peak RSS, an ETA — and the
writer atomically republishes the JSON document (tmp + ``os.replace``),
throttled to at most one write per ``min_interval_s`` of wall clock, so
a reader (``repro obs status status.json``, a dashboard, ``watch``)
never observes a torn file and the write amplification stays bounded
no matter how many shard sub-cells the sweep fans out.

The document is operational telemetry, not a result artifact: it
carries wall-clock durations and host RSS, so its bytes are *not*
deterministic — unlike every other file the obs layer writes.  Schema
(``version`` 1, DESIGN.md Sec. 13):

``state``
    ``"running"`` until the sweep's final publish flips it to ``"done"``.
``cells_total`` / ``cells_done`` / ``cells_running``
    Progress in cells (shard sub-cells count individually); restored
    checkpoint cells count as done.  ``cells_running`` lists in-flight
    cell labels.
``events_executed`` / ``events_per_sec``
    Summed simulated events of finished cells, and that sum over their
    summed wall-clock (the sweep's aggregate simulation throughput).
``elapsed_s`` / ``eta_s``
    Wall clock since the writer attached; naive remaining-time estimate
    ``elapsed / done * (total - done)`` (absent until one cell lands).
``rss_max_mb``
    Peak resident set of the sweep driver process so far.
``checkpoint_hits`` / ``retries`` / ``timeouts`` / ``salvaged`` /
``pool_respawns`` / ``checkpoint_publishes`` / ``merges``
    The harness fault/progress ledger, one counter per event type.
``cells``
    Per-cell detail: ``state`` (``running``/``done``/``retrying``/
    ``restored``), ``attempt``, and for finished cells ``events`` and
    ``wall_s``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Union

from repro.obs import events as ev
from repro.obs.events import TraceEvent
from repro.util.atomicio import atomic_write_text
from repro.util.validation import require

__all__ = ["SweepStatusWriter", "read_status", "format_status",
           "STATUS_VERSION"]

PathLike = Union[str, Path]

#: Schema version stamped into every status document.
STATUS_VERSION = 1


def _rss_mb() -> Optional[float]:
    """Peak resident set size of this process in MiB (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return None
    peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.  Normalize heuristically:
    # a sweep driver's peak RSS is far above 16 MiB either way.
    if peak_kib > 1 << 30:
        return peak_kib / (1 << 20)
    return peak_kib / 1024.0


class SweepStatusWriter:
    """Bus subscriber maintaining the live status file of one sweep.

    Subscribe it to the harness bus, then call :meth:`finish` after the
    sweep returns (or fails) so the file's final state is ``"done"``
    (respectively, the last ``"running"`` snapshot — which is exactly
    what a post-mortem wants to see).
    """

    def __init__(self, path: PathLike, *, min_interval_s: float = 0.5) -> None:
        require(min_interval_s >= 0.0,
                f"min_interval_s must be >= 0, got {min_interval_s}")
        self.path = Path(path)
        self._min_interval_s = float(min_interval_s)
        self._started = time.monotonic()
        self._last_publish: Optional[float] = None
        self._state = "running"
        self._cells_total: Optional[int] = None
        self._jobs: Optional[int] = None
        self._cells: dict[str, dict[str, object]] = {}
        self._counts = {"checkpoint_hits": 0, "retries": 0, "timeouts": 0,
                        "salvaged": 0, "pool_respawns": 0,
                        "checkpoint_publishes": 0, "merges": 0}
        self._events_executed = 0
        self._cell_wall_s = 0.0
        self.publishes = 0

    # ------------------------------------------------------------------
    # the subscriber interface
    # ------------------------------------------------------------------
    def __call__(self, event: TraceEvent) -> None:
        data = event.data
        etype = event.type
        if etype == ev.HARNESS_SWEEP_START:
            self._cells_total = int(data.get("cells", 0)) or None
            jobs = data.get("jobs")
            self._jobs = int(jobs) if jobs is not None else None
        elif etype == ev.HARNESS_CELL_START:
            cell = str(data.get("cell"))
            self._cells[cell] = {"state": "running",
                                 "attempt": int(data.get("attempt", 0))}
        elif etype == ev.HARNESS_CELL_FINISH:
            cell = str(data.get("cell"))
            entry = self._cells.setdefault(cell, {"attempt": 0})
            entry["state"] = "done"
            events = data.get("events")
            wall_s = data.get("wall_s")
            if events is not None:
                entry["events"] = int(events)
                self._events_executed += int(events)
            if wall_s is not None:
                entry["wall_s"] = float(wall_s)
                self._cell_wall_s += float(wall_s)
        elif etype == ev.HARNESS_CHECKPOINT_HIT:
            cell = str(data.get("cell"))
            self._cells[cell] = {"state": "restored", "attempt": 0}
            self._counts["checkpoint_hits"] += 1
        elif etype == ev.HARNESS_CELL_RETRY:
            cell = str(data.get("cell"))
            entry = self._cells.setdefault(cell, {})
            entry["state"] = "retrying"
            entry["attempt"] = int(data.get("attempt", 0))
            self._counts["retries"] += 1
        elif etype == ev.HARNESS_CELL_TIMEOUT:
            self._counts["timeouts"] += 1
        elif etype == ev.HARNESS_CELL_SALVAGE:
            self._counts["salvaged"] += 1
        elif etype == ev.HARNESS_POOL_RESPAWN:
            self._counts["pool_respawns"] += 1
        elif etype == ev.HARNESS_CHECKPOINT_PUBLISH:
            self._counts["checkpoint_publishes"] += 1
        elif etype == ev.HARNESS_SHARD_MERGE:
            self._counts["merges"] += 1
        elif etype == ev.HARNESS_SWEEP_FINISH:
            self._state = "done"
            self.publish(force=True)
            return
        else:
            return  # not a harness event; nothing to fold
        self.publish()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """The current status document as plain data."""
        done = sum(1 for c in self._cells.values()
                   if c.get("state") in ("done", "restored"))
        running = sorted(name for name, c in self._cells.items()
                         if c.get("state") == "running")
        elapsed = time.monotonic() - self._started
        eta: Optional[float] = None
        if (self._state == "running" and self._cells_total
                and 0 < done < self._cells_total):
            eta = elapsed / done * (self._cells_total - done)
        events_per_sec: Optional[float] = None
        if self._cell_wall_s > 0.0:
            events_per_sec = self._events_executed / self._cell_wall_s
        return {
            "version": STATUS_VERSION,
            "state": self._state,
            "jobs": self._jobs,
            "cells_total": self._cells_total,
            "cells_done": done,
            "cells_running": running,
            "events_executed": self._events_executed,
            "events_per_sec": events_per_sec,
            "elapsed_s": round(elapsed, 3),
            "eta_s": None if eta is None else round(eta, 3),
            "rss_max_mb": _rss_mb(),
            **self._counts,
            "cells": {name: dict(cell)
                      for name, cell in sorted(self._cells.items())},
        }

    def publish(self, *, force: bool = False) -> bool:
        """Atomically republish the status file (throttled unless forced)."""
        now = time.monotonic()
        if (not force and self._last_publish is not None
                and now - self._last_publish < self._min_interval_s):
            return False
        self._last_publish = now
        text = json.dumps(self.snapshot(), indent=2, sort_keys=False) + "\n"
        atomic_write_text(self.path, text)
        self.publishes += 1
        return True

    def finish(self, *, state: str = "done") -> None:
        """Final forced publish; flips ``state`` (idempotent)."""
        self._state = state
        self.publish(force=True)


# ----------------------------------------------------------------------
# the reader side (`repro obs status <file>`)
# ----------------------------------------------------------------------
def read_status(path: PathLike) -> dict:
    """Load a status document, with actionable errors on bad input."""
    p = Path(path)
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{p}: not a JSON status document: {exc}") from exc
    if not isinstance(doc, dict) or "state" not in doc or "cells" not in doc:
        raise ValueError(f"{p}: not a sweep status document "
                         f"(missing 'state'/'cells' fields)")
    return doc


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    s = int(seconds)
    if s >= 3600:
        return f"{s // 3600}h{(s % 3600) // 60:02d}m"
    if s >= 60:
        return f"{s // 60}m{s % 60:02d}s"
    return f"{seconds:.1f}s"


def format_status(doc: dict) -> str:
    """Render a status document as the `repro obs status` text view."""
    total = doc.get("cells_total")
    done = doc.get("cells_done", 0)
    progress = f"{done}/{total}" if total else str(done)
    eps = doc.get("events_per_sec")
    lines = [
        f"sweep {doc.get('state', '?')}: {progress} cells"
        + (f", jobs={doc['jobs']}" if doc.get("jobs") else ""),
        f"  elapsed {_fmt_duration(doc.get('elapsed_s'))}"
        f"   eta {_fmt_duration(doc.get('eta_s'))}"
        f"   sim events {doc.get('events_executed', 0):,}"
        + (f" ({eps:,.0f}/s)" if eps else "")
        + (f"   rss {doc['rss_max_mb']:.0f} MiB"
           if doc.get("rss_max_mb") else ""),
    ]
    ledger = [(k, doc.get(k, 0)) for k in
              ("checkpoint_hits", "retries", "timeouts", "salvaged",
               "pool_respawns", "checkpoint_publishes", "merges")]
    eventful = [f"{k.replace('_', ' ')}={v}" for k, v in ledger if v]
    if eventful:
        lines.append("  harness: " + "  ".join(eventful))
    running = doc.get("cells_running") or []
    if running:
        lines.append("  running:")
        lines.extend(f"    {name}" for name in running)
    cells = doc.get("cells") or {}
    retrying = sorted(name for name, c in cells.items()
                      if c.get("state") == "retrying")
    if retrying:
        lines.append("  retrying:")
        lines.extend(f"    {name} (attempt {cells[name].get('attempt', '?')})"
                     for name in retrying)
    return "\n".join(lines)
