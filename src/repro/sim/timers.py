"""Timer utilities layered on the kernel.

Two recurring patterns in the disk-array simulator get first-class
helpers here:

* :class:`ResettableTimer` — the *idleness threshold* pattern: arm when a
  disk drains, cancel on the next arrival, fire (spin down) if the disk
  stays idle for the full interval.  READ's adaptive threshold (Fig. 6,
  line 22 of the paper) just rewrites :attr:`ResettableTimer.interval`.
* :class:`PeriodicTask` — the *epoch* pattern: ATM/FRD bookkeeping in
  READ and PDC's periodic migration both run a callback every ``period``
  seconds.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import EventHandle, Simulator
from repro.util.validation import require_positive

__all__ = ["ResettableTimer", "PeriodicTask"]


class ResettableTimer:
    """One-shot timer that can be re-armed, reset, or cancelled.

    The ``action`` fires once, ``interval`` seconds after the most recent
    :meth:`arm`/:meth:`reset`, unless :meth:`cancel` intervenes first.
    """

    def __init__(self, sim: Simulator, interval: float, action: Callable[[], None],
                 *, priority: int = 0) -> None:
        self._sim = sim
        self.interval = require_positive(interval, "interval")
        self._action = action
        self._priority = priority
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        """Whether the timer currently has a pending expiry."""
        return self._handle is not None and not self._handle.cancelled

    def arm(self) -> None:
        """Start (or restart) the countdown from the current sim time."""
        self.cancel()
        self._handle = self._sim.schedule(self.interval, self._fire, priority=self._priority)

    # reset is an alias that reads better at call sites reacting to activity
    reset = arm

    def cancel(self) -> None:
        """Stop the countdown; no-op when not armed."""
        if self._handle is not None:
            self._sim.cancel(self._handle)
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._action()


class PeriodicTask:
    """Run ``action(tick_index)`` every ``period`` seconds until stopped.

    The first tick fires at ``start_offset`` (default: one full period
    after creation).  The action may call :meth:`stop` to end the series,
    and may change :attr:`period` to re-pace future ticks (used by
    adaptive-epoch experiments).
    """

    def __init__(self, sim: Simulator, period: float, action: Callable[[int], None],
                 *, start_offset: Optional[float] = None, priority: int = 0) -> None:
        self._sim = sim
        self.period = require_positive(period, "period")
        self._action = action
        self._priority = priority
        self._tick = 0
        self._stopped = False
        first = self.period if start_offset is None else start_offset
        if first < 0:
            raise ValueError(f"start_offset must be >= 0, got {start_offset!r}")
        self._handle: Optional[EventHandle] = sim.schedule(first, self._fire, priority=priority)

    @property
    def ticks_fired(self) -> int:
        """Number of ticks dispatched so far."""
        return self._tick

    def stop(self) -> None:
        """Cancel all future ticks (safe to call from inside the action)."""
        self._stopped = True
        if self._handle is not None:
            self._sim.cancel(self._handle)
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        if self._stopped:
            return
        index = self._tick
        self._tick += 1
        self._action(index)
        if not self._stopped:
            self._handle = self._sim.schedule(self.period, self._fire, priority=self._priority)
