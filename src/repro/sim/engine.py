"""The event loop: a heap-ordered future event list with stable ties.

Ordering contract
-----------------
Events fire in ascending ``(time, priority, seq)`` order:

* ``time`` — simulated seconds;
* ``priority`` — integer tiebreak for simultaneous events (lower fires
  first; e.g. "request completion" is processed before "idleness timer"
  at the same instant so the timer sees an up-to-date queue);
* ``seq`` — monotone insertion counter, making same-time same-priority
  events FIFO and the whole loop deterministic.

Cancellation is lazy: :meth:`Simulator.cancel` marks the handle and the
heap pop discards dead entries, which is O(1) per cancel instead of an
O(n) heap rebuild — idleness timers are cancelled constantly, so this
matters.

Hot-path layout
---------------
The heap stores ``(time, priority, seq, handle)`` tuples rather than the
handles themselves, so sift comparisons run as C tuple comparisons
instead of Python ``__lt__`` calls (``seq`` is unique, so the handle
element is never compared).  A live-event counter makes
:attr:`Simulator.pending_count` O(1), and :meth:`Simulator.run` takes a
branch-free drain loop when neither ``until`` nor ``max_events`` is set.

Observability
-------------
The kernel carries two opt-in observation points, both off by default
and costing nothing while off:

* :attr:`Simulator.trace` — an opaque slot for a
  :class:`repro.obs.TraceBus`; the kernel never touches it itself
  (instrumented components read it at construction), it just gives
  every layer holding the ``Simulator`` one well-known place to find
  the bus.
* :meth:`Simulator.set_profiler` — attaches a
  :class:`repro.obs.KernelProfiler`-shaped object; the unbounded drain
  then runs a *separate* instrumented loop timing each action by its
  qualified name.  The uninstrumented ``_drain`` stays byte-for-byte
  untouched, so profiling-off throughput is unchanged.
"""

from __future__ import annotations

import heapq
import math
from time import perf_counter
from typing import Any, Callable, Optional, Protocol

__all__ = ["EventHandle", "Simulator", "SimulationError", "DispatchProfiler"]

Action = Callable[[], None]


class DispatchProfiler(Protocol):
    """What the kernel needs from a profiler: one call per dispatch.

    Implemented by :class:`repro.obs.KernelProfiler`; declared as a
    protocol so the kernel never imports the observability layer.
    """

    def record(self, handler: str, elapsed_s: float) -> None: ...

_INF = math.inf


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling into the past, bad run bounds)."""


class EventHandle:
    """A scheduled event; keep it to :meth:`cancel <Simulator.cancel>` later.

    Attributes
    ----------
    time:
        Absolute simulated time at which the event fires.
    priority:
        Tiebreak rank among simultaneous events (lower first).
    """

    __slots__ = ("time", "priority", "seq", "action", "cancelled")

    def __init__(self, time: float, priority: int, seq: int, action: Action) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action: Optional[Action] = action
        self.cancelled = False

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, prio={self.priority}, seq={self.seq}, {state})"


class Simulator:
    """A discrete-event simulator clock plus future event list.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        if not math.isfinite(start_time):
            raise SimulationError(f"start_time must be finite, got {start_time!r}")
        self._now = float(start_time)
        # entries are (time, priority, seq, EventHandle); seq is unique so
        # comparisons never reach the handle
        self._heap: list[tuple[float, int, int, EventHandle]] = []
        self._seq = 0
        self._live = 0
        self._events_executed = 0
        self._running = False
        self._stop = False
        #: Opaque slot for a :class:`repro.obs.TraceBus` (or ``None``).
        #: Set by the experiment runner before components are built;
        #: the kernel itself never reads it.
        self.trace: Optional[Any] = None
        self._profiler: Optional[DispatchProfiler] = None

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events dispatched since construction."""
        return self._events_executed

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def set_profiler(self, profiler: Optional[DispatchProfiler]) -> None:
        """Attach (or with ``None`` detach) a dispatch profiler.

        While attached, unbounded runs (:meth:`run_until_drained`, or
        :meth:`run` without bounds) time every action and report it by
        qualified name; bounded runs are never profiled (they are the
        debugging path, not the measured path).
        """
        if profiler is not None and not callable(getattr(profiler, "record", None)):
            raise SimulationError(
                f"profiler must have a record(handler, elapsed_s) method, "
                f"got {profiler!r}")
        self._profiler = profiler

    @property
    def profiler(self) -> Optional[DispatchProfiler]:
        """The attached dispatch profiler, if any."""
        return self._profiler

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Action, *, priority: int = 0) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now.

        ``delay`` must be finite and non-negative; a zero delay fires at
        the current time, after any already-queued events at this time.
        """
        now = self._now
        try:
            time = now + delay
        except TypeError:
            raise SimulationError(
                f"delay must be finite and >= 0, got {delay!r}") from None
        # one comparison rejects NaN and negative delays; inf needs its own
        if not (time >= now) or time == _INF:
            raise SimulationError(f"delay must be finite and >= 0, got {delay!r}")
        # push inlined (schedule is called once or more per simulated event)
        if not callable(action):
            raise SimulationError(f"action must be callable, got {action!r}")
        if type(priority) is not int:
            priority = int(priority)
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, priority, seq, action)
        heapq.heappush(self._heap, (time, priority, seq, handle))
        self._live += 1
        return handle

    def schedule_at(self, time: float, action: Action, *, priority: int = 0) -> EventHandle:
        """Schedule ``action`` at absolute simulated ``time`` (>= now)."""
        try:
            in_future = time >= self._now
        except TypeError:
            raise SimulationError(f"event time must be finite, got {time!r}") from None
        if not in_future:
            if isinstance(time, (int, float)) and math.isfinite(time):
                raise SimulationError(
                    f"cannot schedule into the past: event time {time} < now {self._now}"
                )
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time == _INF:
            raise SimulationError(f"event time must be finite, got {time!r}")
        if type(time) is not float:
            time = float(time)
        # push inlined (same body as in schedule)
        if not callable(action):
            raise SimulationError(f"action must be callable, got {action!r}")
        if type(priority) is not int:
            priority = int(priority)
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, priority, seq, action)
        heapq.heappush(self._heap, (time, priority, seq, handle))
        self._live += 1
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event.  Cancelling twice (or after it fired) is a no-op."""
        if handle.cancelled:
            return
        handle.cancelled = True
        if handle.action is not None:  # still queued (fired handles are action-less)
            handle.action = None  # break reference cycles early
            self._live -= 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask the running loop to return after the current action.

        Intended to be called from *inside* an event action (e.g. a
        metrics callback that has seen the last completion); a no-op when
        no loop is running.
        """
        self._stop = True

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][3].action is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Dispatch the single next event.  Returns ``False`` when drained."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = pop(heap)
            handle = entry[3]
            action = handle.action
            if action is None:  # lazily-cancelled entry
                continue
            handle.action = None
            self._now = entry[0]
            self._live -= 1
            self._events_executed += 1
            action()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        ``until`` is inclusive: events scheduled exactly at ``until``
        execute, and the clock is advanced to ``until`` on return even if
        the queue drained earlier (so post-run accounting covers the full
        horizon).  An action may call :meth:`request_stop` to end the run
        early.
        """
        if self._running:
            raise SimulationError("run() re-entered from inside an event action")
        if until is not None and (not math.isfinite(until) or until < self._now):
            raise SimulationError(f"until must be finite and >= now, got {until!r}")
        if max_events is not None and max_events < 0:
            raise SimulationError(f"max_events must be >= 0, got {max_events!r}")

        self._running = True
        self._stop = False
        try:
            if until is None and max_events is None:
                if self._profiler is None:
                    self._drain()
                else:
                    self._drain_profiled()
            else:
                self._run_bounded(until, max_events)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def run_until_drained(self) -> None:
        """Drain the queue on the fast path (no ``until``/``max_events``
        bookkeeping per event).  Equivalent to :meth:`run` with no bounds;
        honors :meth:`request_stop`.
        """
        if self._running:
            raise SimulationError("run() re-entered from inside an event action")
        self._running = True
        self._stop = False
        try:
            if self._profiler is None:
                self._drain()
            else:
                self._drain_profiled()
        finally:
            self._running = False

    # ------------------------------------------------------------------
    def _drain(self) -> None:
        # The kernel's hottest loop: everything pre-bound, no bound checks.
        heap = self._heap
        pop = heapq.heappop
        while heap and not self._stop:
            entry = pop(heap)
            handle = entry[3]
            action = handle.action
            if action is None:
                continue
            handle.action = None
            self._now = entry[0]
            self._live -= 1
            self._events_executed += 1
            action()

    def _drain_profiled(self) -> None:
        # _drain with per-action timing; a separate loop so the
        # profiling-off path carries zero extra work per event.
        heap = self._heap
        pop = heapq.heappop
        profiler = self._profiler
        assert profiler is not None
        record = profiler.record
        timer = perf_counter
        while heap and not self._stop:
            entry = pop(heap)
            handle = entry[3]
            action = handle.action
            if action is None:
                continue
            handle.action = None
            self._now = entry[0]
            self._live -= 1
            self._events_executed += 1
            name = getattr(action, "__qualname__", None)
            if name is None:  # bound method / partial: name the underlying func
                name = getattr(getattr(action, "__func__", action),
                               "__qualname__", repr(action))
            start = timer()
            action()
            record(name, timer() - start)

    def _run_bounded(self, until: Optional[float], max_events: Optional[int]) -> None:
        heap = self._heap
        pop = heapq.heappop
        dispatched = 0
        while heap and not self._stop:
            if max_events is not None and dispatched >= max_events:
                break
            head = heap[0]
            if head[3].action is None:
                pop(heap)
                continue
            if until is not None and head[0] > until:
                break
            pop(heap)
            handle = head[3]
            action = handle.action
            handle.action = None
            self._now = head[0]
            self._live -= 1
            self._events_executed += 1
            action()
            dispatched += 1
