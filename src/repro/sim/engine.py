"""The event loop: a heap-ordered future event list with stable ties.

Ordering contract
-----------------
Events fire in ascending ``(time, priority, seq)`` order:

* ``time`` — simulated seconds;
* ``priority`` — integer tiebreak for simultaneous events (lower fires
  first; e.g. "request completion" is processed before "idleness timer"
  at the same instant so the timer sees an up-to-date queue);
* ``seq`` — monotone insertion counter, making same-time same-priority
  events FIFO and the whole loop deterministic.

Cancellation is lazy: :meth:`Simulator.cancel` marks the handle and the
heap pop discards dead entries, which is O(1) per cancel instead of an
O(n) heap rebuild — idleness timers are cancelled constantly, so this
matters.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Optional

__all__ = ["EventHandle", "Simulator", "SimulationError"]

Action = Callable[[], None]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling into the past, bad run bounds)."""


class EventHandle:
    """A scheduled event; keep it to :meth:`cancel <Simulator.cancel>` later.

    Attributes
    ----------
    time:
        Absolute simulated time at which the event fires.
    priority:
        Tiebreak rank among simultaneous events (lower first).
    """

    __slots__ = ("time", "priority", "seq", "action", "cancelled")

    def __init__(self, time: float, priority: int, seq: int, action: Action) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action: Optional[Action] = action
        self.cancelled = False

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, prio={self.priority}, seq={self.seq}, {state})"


class Simulator:
    """A discrete-event simulator clock plus future event list.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        if not math.isfinite(start_time):
            raise SimulationError(f"start_time must be finite, got {start_time!r}")
        self._now = float(start_time)
        self._heap: list[EventHandle] = []
        self._seq = 0
        self._events_executed = 0
        self._running = False

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events dispatched since construction."""
        return self._events_executed

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Action, *, priority: int = 0) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now.

        ``delay`` must be finite and non-negative; a zero delay fires at
        the current time, after any already-queued events at this time.
        """
        if not (isinstance(delay, (int, float)) and math.isfinite(delay)) or delay < 0:
            raise SimulationError(f"delay must be finite and >= 0, got {delay!r}")
        return self.schedule_at(self._now + delay, action, priority=priority)

    def schedule_at(self, time: float, action: Action, *, priority: int = 0) -> EventHandle:
        """Schedule ``action`` at absolute simulated ``time`` (>= now)."""
        if not (isinstance(time, (int, float)) and math.isfinite(time)):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: event time {time} < now {self._now}"
            )
        if not callable(action):
            raise SimulationError(f"action must be callable, got {action!r}")
        handle = EventHandle(float(time), int(priority), self._seq, action)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event.  Cancelling twice (or after it fired) is a no-op."""
        handle.cancelled = True
        handle.action = None  # break reference cycles early

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_dead()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Dispatch the single next event.  Returns ``False`` when drained."""
        self._drop_dead()
        if not self._heap:
            return False
        handle = heapq.heappop(self._heap)
        self._now = handle.time
        action, handle.action = handle.action, None
        self._events_executed += 1
        assert action is not None  # guaranteed live by _drop_dead
        action()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        ``until`` is inclusive: events scheduled exactly at ``until``
        execute, and the clock is advanced to ``until`` on return even if
        the queue drained earlier (so post-run accounting covers the full
        horizon).
        """
        if self._running:
            raise SimulationError("run() re-entered from inside an event action")
        if until is not None and (not math.isfinite(until) or until < self._now):
            raise SimulationError(f"until must be finite and >= now, got {until!r}")
        if max_events is not None and max_events < 0:
            raise SimulationError(f"max_events must be >= 0, got {max_events!r}")

        self._running = True
        dispatched = 0
        try:
            while True:
                if max_events is not None and dispatched >= max_events:
                    break
                self._drop_dead()
                if not self._heap:
                    break
                if until is not None and self._heap[0].time > until:
                    break
                self.step()
                dispatched += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    # ------------------------------------------------------------------
    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
