"""Batched (struct-of-arrays) kernel stepping.

The event kernel (:mod:`repro.sim.engine`) dispatches one Python
callable per event — ~1 µs of interpreter work per *event*.  When the
model being stepped is homogeneous across many lanes (e.g. every disk
of an array advancing by the same ``dt``), that per-event cost can be
amortized: a single heap dispatch invokes one vectorized step function
that updates **all** lanes at once, so the per-lane cost collapses to a
few NumPy-kernel nanoseconds.

:class:`BatchTicker` is that bridge, and it is deliberately generic —
this module knows nothing about disks (the ``sim`` layer only depends
on ``repro.util``).  The step callable owns the lane semantics; for the
disk array it is :meth:`repro.disk.state.ArrayState.batch_step`.  The
ticker only provides the deterministic clock: fixed-interval events at
a caller-chosen priority, one heap entry alive at a time, and a
``lane_updates`` counter that throughput benchmarks read.

Determinism: ticks are ordinary simulator events, so they interleave
with other events under the same ``(time, priority, seq)`` contract,
and tick times are computed as ``start + k * interval`` (not repeated
addition) so the schedule is identical however long the run is.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import EventHandle, SimulationError, Simulator
from repro.util.validation import require, require_positive

__all__ = ["BatchTicker"]

#: Fire batch ticks after same-time model events (completions=0,
#: transitions=1) so a tick always sees a settled operating point.
DEFAULT_TICK_PRIORITY = 10


class BatchTicker:
    """Drives a vectorized step function on a fixed simulated cadence.

    Parameters
    ----------
    sim:
        The event kernel providing the clock.
    n_lanes:
        How many lanes one step call advances (bookkeeping only; the
        step callable owns the actual buffers).
    step:
        ``step(dt) -> int`` — advance every lane by ``dt`` simulated
        seconds and return the number of lane updates performed.
    interval_s:
        Simulated seconds between ticks.
    priority:
        Event priority of each tick (default fires after same-time
        model events).
    max_ticks:
        Stop after this many ticks (``None`` = run until stopped or
        the simulator drains).
    """

    def __init__(self, sim: Simulator, n_lanes: int,
                 step: Callable[[float], int], interval_s: float, *,
                 priority: int = DEFAULT_TICK_PRIORITY,
                 max_ticks: Optional[int] = None) -> None:
        require(n_lanes >= 1, f"n_lanes must be >= 1, got {n_lanes}")
        require_positive(interval_s, "interval_s")
        if max_ticks is not None:
            require(max_ticks >= 1, f"max_ticks must be >= 1, got {max_ticks}")
        self._sim = sim
        self.n_lanes = n_lanes
        self._step = step
        self.interval_s = float(interval_s)
        self._priority = priority
        self._max_ticks = max_ticks
        self._origin_s = 0.0
        self._handle: Optional[EventHandle] = None
        #: Ticks fired so far.
        self.ticks = 0
        #: Total per-lane updates performed (``ticks * n_lanes``).
        self.lane_updates = 0

    @property
    def running(self) -> bool:
        """Whether a future tick is currently scheduled."""
        return self._handle is not None

    def start(self) -> None:
        """Schedule the first tick one interval from now."""
        if self._handle is not None:
            raise SimulationError("BatchTicker already started")
        self._origin_s = self._sim.now
        self.ticks = 0
        self.lane_updates = 0
        self._schedule_next()

    def stop(self) -> None:
        """Cancel the pending tick, if any."""
        if self._handle is not None:
            self._sim.cancel(self._handle)
            self._handle = None

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        # k * interval from the origin, not repeated addition: the tick
        # grid is bit-identical regardless of how many ticks have fired.
        due = self._origin_s + (self.ticks + 1) * self.interval_s
        self._handle = self._sim.schedule_at(due, self._tick,
                                             priority=self._priority)

    def _tick(self) -> None:
        self._handle = None
        self.ticks += 1
        self.lane_updates += self._step(self.interval_s)
        if self._max_ticks is None or self.ticks < self._max_ticks:
            self._schedule_next()
