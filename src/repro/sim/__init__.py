"""Discrete-event simulation kernel.

A small, fast, dependency-free DES engine in the callback style: events
are ``(time, priority, sequence)``-ordered entries in a binary heap, each
carrying a zero-argument action.  The disk-array simulator
(:mod:`repro.disk`) and the policy layer (:mod:`repro.policies`) are built
entirely on this kernel.

Design notes (why callbacks, not generator processes): the hot loop of a
trace-driven run executes millions of events; plain callables avoid the
generator-resume overhead and keep profiles flat (see the project guides'
"measure first" rule — the event loop is the one genuine hot spot in this
library).
"""

from repro.sim.engine import EventHandle, Simulator, SimulationError
from repro.sim.soa import BatchTicker
from repro.sim.timers import ResettableTimer, PeriodicTask

__all__ = [
    "EventHandle",
    "Simulator",
    "SimulationError",
    "ResettableTimer",
    "PeriodicTask",
    "BatchTicker",
]
