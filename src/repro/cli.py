"""Command-line interface: ``python -m repro <command>``.

Five commands mirror the library's main entry points:

* ``simulate``   — run one policy over a synthetic workload, print the
  result summary and per-disk ESRRA factors;
* ``compare``    — the Figure 7 sweep across policies and array sizes;
* ``sweep``      — the same sweep under the resilient harness:
  ``--checkpoint``/``--resume`` journal completed cells and skip them on
  restart, ``--retries``/``--cell-timeout``/``--watchdog`` give every
  cell its own fault domain, and SIGINT drains gracefully with a resume
  hint;
* ``press``      — evaluate the PRESS model at explicit factor values
  (or print a Fig. 5 surface at a temperature);
* ``worthwhile`` — the title question for one scheme vs the always-on
  reference, in dollars per year;
* ``report``     — write a full markdown comparison report;
* ``trace``      — generate/inspect traces and convert WC98 binary logs;
* ``obs``        — inspect telemetry artifacts (``obs summarize`` rolls
  one or more JSONL event traces — e.g. per-shard segments — up per
  event type and per disk; ``obs status`` renders a live sweep status
  file; ``--json`` emits the same view machine-readably);
* ``lint``       — the determinism & invariant static-analysis suite
  (:mod:`repro.analysis`): exit 0 clean, 1 findings, 2 error.

``simulate``, ``compare``, and ``sweep`` accept telemetry flags
(``--trace-out``, ``--metrics-out``, ``--sample-interval``) that attach
the :mod:`repro.obs` layer to the run; ``sweep`` additionally takes
``--status-out`` for a crash-safe live progress feed folded from the
harness span events.  ``simulate``, ``compare``, ``sweep``,
``worthwhile``, and ``report`` accept ``--redundancy`` to lay the array
out in k-of-n groups (see :mod:`repro.redundancy`).  Unsupported flag
combinations (e.g. ``--faults`` or ``--redundancy`` with ``--shards``)
fail fast with a capability error before any cell runs.

Every command is a pure function of its arguments (workloads are seeded)
so CLI output is reproducible and scriptable.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]


# ----------------------------------------------------------------------
# shared argument groups
# ----------------------------------------------------------------------
def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("workload")
    group.add_argument("--files", type=int, default=2_000,
                       help="distinct files in the data set (default 2000)")
    group.add_argument("--requests", type=int, default=100_000,
                       help="trace length (default 100000)")
    group.add_argument("--zipf-alpha", type=float, default=0.8,
                       help="popularity skew in [0,1] (default 0.8)")
    group.add_argument("--interarrival-ms", type=float, default=58.4,
                       help="mean request gap, ms (paper: 58.4)")
    group.add_argument("--seed", type=int, default=7, help="workload seed")
    group.add_argument("--bursty", action="store_true", default=True,
                       help="ON/OFF bursty arrivals (default on)")
    group.add_argument("--no-bursty", dest="bursty", action="store_false",
                       help="plain Poisson arrivals")
    group.add_argument("--heavy", type=float, default=None, metavar="X",
                       help="heavy condition: X-times the arrival rate")


def _workload_config(args: argparse.Namespace):
    from repro.workload.synthetic import SyntheticWorkloadConfig

    cfg = SyntheticWorkloadConfig(
        n_files=args.files, n_requests=args.requests,
        zipf_alpha=args.zipf_alpha,
        mean_interarrival_s=args.interarrival_ms / 1e3,
        seed=args.seed, bursty=args.bursty)
    if args.heavy is not None:
        cfg = cfg.heavy(args.heavy)
    return cfg


def _policy_names() -> list[str]:
    from repro.experiments.runner import _POLICY_REGISTRY

    return sorted(_POLICY_REGISTRY)


def _add_faults_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="enable in-run fault injection: 'on' for defaults, or "
             "key=value pairs (seed, accel, hazard_refresh_s, "
             "repair_delay_s, max_retries, retry_backoff_s, "
             "retry_timeout_s), e.g. 'seed=7,accel=10000'")


def _faults_config(args: argparse.Namespace):
    if args.faults is None:
        return None
    from repro.faults import parse_faults_spec

    return parse_faults_spec(args.faults)


def _add_redundancy_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--redundancy", default=None, metavar="SCHEME",
        help="lay the array out in redundancy groups: a preset "
             "('mirror2', 'mirror3', 'mirror3dc', 'block4-2') or "
             "'mirrorN'; degraded reads reconstruct from survivors and "
             "the summary gains a CTMC reliability cross-check "
             "(MTTDL, P(loss))")


def _redundancy_scheme(args: argparse.Namespace):
    if args.redundancy is None:
        return None
    from repro.redundancy import parse_redundancy_spec

    return parse_redundancy_spec(args.redundancy)


def _add_obs_args(parser: argparse.ArgumentParser, *,
                  profile: bool = False) -> None:
    group = parser.add_argument_group("telemetry")
    group.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the structured event trace as JSONL")
    group.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the sampled per-disk time-series "
                            "(CSV, or JSON when FILE ends in .json)")
    group.add_argument("--sample-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="simulated seconds between time-series samples "
                            "(default 60 when --metrics-out is given)")
    if profile:
        group.add_argument("--profile", action="store_true",
                           help="time the event loop per handler and print "
                                "the profile")


def _obs_config(args: argparse.Namespace):
    profile = bool(getattr(args, "profile", False))
    if (args.trace_out is None and args.metrics_out is None
            and args.sample_interval is None and not profile):
        return None
    from repro.obs import ObsConfig

    return ObsConfig(trace_path=args.trace_out, metrics_path=args.metrics_out,
                     sample_interval_s=args.sample_interval, profile=profile)


def _package_version() -> str:
    """Installed package version, falling back to pyproject.toml for
    source checkouts run via ``PYTHONPATH=src``."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        pass
    import re
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        match = re.search(r'^version\s*=\s*"([^"]+)"',
                          pyproject.read_text(encoding="utf-8"), re.MULTILINE)
    except OSError:
        return "unknown"
    return match.group(1) if match else "unknown"


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_table
    from repro.experiments.runner import ExperimentConfig, make_policy, run_simulation

    config = ExperimentConfig(workload=_workload_config(args))
    fileset, trace = config.generate()
    policy = make_policy(args.policy)
    obs = _obs_config(args)
    result = run_simulation(policy, fileset, trace, n_disks=args.disks,
                            disk_params=config.disk_params,
                            faults=_faults_config(args), obs=obs,
                            redundancy=_redundancy_scheme(args))

    print(format_table([result.summary_row()], title=f"{args.policy} on {args.disks} disks"))
    if obs is not None:
        if obs.trace_path is not None:
            print(f"wrote trace -> {obs.trace_path}")
        if obs.metrics_path is not None:
            print(f"wrote time-series -> {obs.metrics_path}")
    if result.profile is not None:
        print()
        print(format_table([h.summary_row() for h in result.profile.handlers],
                           title=f"event-loop profile "
                                 f"({result.profile.events_per_sec:.3g} events/s)"))
    if result.faults is not None:
        f = result.faults
        print()
        print(f"fault injection: {f.disk_failures} disk failure(s), "
              f"{f.rebuilds_completed} rebuild(s), availability "
              f"{100.0 * f.availability:.4f}%")
        print(f"  requests: {f.requests_failed} failed, {f.requests_retried} "
              f"retried, {f.requests_redirected} redirected; "
              f"{f.data_loss_events} data-loss event(s) ({f.files_lost} files)")
        for disk_id, at_s in f.failure_schedule:
            print(f"  disk {disk_id} failed at t={at_s:.1f} s")
    if result.redundancy is not None:
        red = result.redundancy
        counts = red.state_counts()
        print()
        print(f"redundancy [{red.scheme}]: {red.n_groups} group(s) — "
              f"{counts['healthy']} healthy, {counts['degraded']} degraded, "
              f"{counts['critical']} critical, {counts['lost']} lost")
        print(f"  degraded reads: {red.reconstruct_reads} reconstructed "
              f"({red.reconstruct_legs} leg(s)); rebuild fan-out: "
              f"{red.rebuild_read_legs} read leg(s); "
              f"{red.domain_outages} domain outage(s)")
        if red.ctmc is not None:
            c = red.ctmc
            print(f"  CTMC: MTTDL {c.mttdl_array_years:.3g} yr, "
                  f"P(loss, {c.mission_years:g} yr mission) = "
                  f"{c.p_loss_array:.3g} "
                  f"(rebuild {c.rebuild_hours:.2g} h)")
    if args.per_disk:
        rows = [{
            "disk": f.disk_id,
            "temp_C": f"{f.mean_temperature_c:.1f}",
            "util_%": f"{f.utilization_percent:.2f}",
            "trans/day": f"{f.transitions_per_day:.1f}",
            "AFR_%": f"{f.afr_percent:.3f}",
        } for f in result.per_disk]
        print()
        print(format_table(rows, title="per-disk ESRRA factors"))
    return 0


def _print_comparison(fig7, policies: list[str], baseline: str) -> None:
    """Shared panel printer for the ``compare`` and ``sweep`` commands."""
    from repro.experiments.figures import headline_summary
    from repro.experiments.reporting import format_series

    x = np.array(fig7.disk_counts, dtype=float)
    print(format_series(x, fig7.series("afr"), x_label="disks",
                        title="array AFR [%]"))
    print()
    print(format_series(x, {k: v / 1e3 for k, v in fig7.series("energy").items()},
                        x_label="disks", title="energy [kJ]"))
    print()
    print(format_series(x, {k: v * 1e3 for k, v in fig7.series("response").items()},
                        x_label="disks", title="mean response [ms]"))
    if any(r.faults is not None for runs in fig7.results.values() for r in runs):
        avail = {name: np.array([100.0 * r.faults.availability for r in runs])
                 for name, runs in fig7.results.items()}
        losses = {name: np.array([float(r.faults.data_loss_events) for r in runs],
                                 dtype=float)
                  for name, runs in fig7.results.items()}
        print()
        print(format_series(x, avail, x_label="disks", title="availability [%]"))
        print()
        print(format_series(x, losses, x_label="disks", title="data-loss events"))
    if baseline and baseline in policies:
        print()
        summary = headline_summary(fig7, baseline=baseline)
        for metric, stats in summary.items():
            parts = ", ".join(f"{k.replace('vs_', '').replace('_%', '')} {v:+.1f}%"
                              for k, v in stats.items())
            print(f"{baseline} improvement, {metric}: {parts}")


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.figures import figure7_comparison
    from repro.experiments.runner import ExperimentConfig

    if args.verbose:
        from repro.obs import setup_logging

        setup_logging()
    config = ExperimentConfig(workload=_workload_config(args))
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    disk_counts = [int(d) for d in args.disks.split(",")]
    obs = _obs_config(args)
    fig7 = figure7_comparison(config, disk_counts=disk_counts, policies=policies,
                              faults=_faults_config(args), obs=obs,
                              jobs=args.jobs,
                              redundancy=_redundancy_scheme(args))
    if obs is not None and (obs.trace_path or obs.metrics_path):
        print("telemetry written per cell "
              "(paths suffixed with -<policy>-<disks>)")
    _print_comparison(fig7, policies, args.baseline)
    return 0


def _validate_sweep_combos(args: argparse.Namespace) -> None:
    """Fail fast, by flag name, on capability combos the engines reject.

    The library layers raise the same refusals, but from deep inside a
    worker process; surfacing them here turns a mid-sweep stack trace
    into an immediate ``error: ...`` naming the offending flags.
    """
    if args.shards is not None and args.faults is not None:
        raise ValueError(
            "--faults cannot be combined with --shards: fault injection "
            "needs the whole-array view (rebuilds and redirection cross "
            "shard boundaries); drop one of the two flags")
    if getattr(args, "profile", False) and args.shards is not None:
        raise ValueError(
            "--profile cannot be combined with --shards: kernel profiling "
            "wraps one event loop, and a sharded cell runs several")
    if args.shards is not None and getattr(args, "redundancy", None) is not None:
        raise ValueError(
            "--redundancy cannot be combined with --shards: redundancy "
            "groups span the whole array (degraded reads and rebuild "
            "fan-out reach disks in other shards); drop --shards to "
            "combine --redundancy with this workload")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.figures import figure7_comparison
    from repro.experiments.report import write_markdown_report
    from repro.experiments.resilience import ResilienceConfig

    if args.verbose:
        from repro.obs import setup_logging

        setup_logging()
    from repro.experiments.runner import ExperimentConfig

    _validate_sweep_combos(args)
    checkpoint = args.resume or args.checkpoint
    if args.resume is not None and not Path(args.resume).exists():
        raise FileNotFoundError(
            f"checkpoint to resume not found: {args.resume} "
            f"(use --checkpoint to start a new one)")
    resilience = ResilienceConfig(
        max_retries=args.retries,
        retry_backoff_s=args.retry_backoff,
        cell_timeout_s=args.cell_timeout,
        watchdog=args.watchdog)
    config = ExperimentConfig(workload=_workload_config(args))
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    disk_counts = [int(d) for d in args.disks.split(",")]
    obs = _obs_config(args)
    status_writer = None
    bus = None
    if args.status_out is not None:
        from repro.obs import SweepStatusWriter, TraceBus

        bus = TraceBus()
        status_writer = SweepStatusWriter(args.status_out)
        bus.subscribe(status_writer)
        status_writer.publish(force=True)  # feed exists before cell one
    try:
        fig7 = figure7_comparison(config, disk_counts=disk_counts,
                                  policies=policies,
                                  faults=_faults_config(args), jobs=args.jobs,
                                  resilience=resilience, checkpoint=checkpoint,
                                  obs=obs, bus=bus,
                                  shards=args.shards,
                                  shard_assignment=args.assignment,
                                  stream_chunk=args.stream_chunk,
                                  redundancy=_redundancy_scheme(args))
    except BaseException:
        if status_writer is not None:
            status_writer.finish(state="failed")
        raise
    if status_writer is not None:
        status_writer.finish(state="done")
        print(f"status feed -> {args.status_out}")
    if obs is not None and (obs.trace_path or obs.metrics_path):
        print("telemetry written per cell "
              "(paths suffixed with -<policy>-<disks>)")
    if args.shards is not None:
        print(f"sharded execution: {args.shards} shard(s) per cell, "
              f"{args.assignment} assignment, streamed workload")
    _print_comparison(fig7, policies, args.baseline)
    summary = fig7.resilience
    if summary is not None:
        print()
        print(f"harness: {summary.cells_run} cell(s) run, "
              f"{summary.checkpoint_hits} restored from checkpoint, "
              f"{summary.retries} retried, {summary.timeouts} timed out, "
              f"{summary.pool_respawns} pool respawn(s)")
    if checkpoint is not None:
        print(f"checkpoint -> {checkpoint}")
    if args.report:
        path = write_markdown_report(fig7, args.report,
                                     baseline=args.baseline or None)
        print(f"wrote report -> {path}")
    return 0


def _cmd_press(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_table
    from repro.press.model import PRESSModel

    press = PRESSModel()
    if args.surface is not None:
        utils = np.linspace(25, 100, 4)
        freqs = np.linspace(0, 1600, 5)
        surface = press.afr_surface(args.surface, utils, freqs)
        rows = []
        for i, u in enumerate(utils):
            row = {"util_%": f"{u:.0f}"}
            for j, f in enumerate(freqs):
                row[f"f={f:.0f}/d"] = f"{surface[i, j]:.2f}"
            rows.append(row)
        print(format_table(rows, title=f"PRESS AFR % at {args.surface:.0f} degC"))
        return 0

    afr = press.disk_afr(args.temp, args.util, args.freq)
    print(f"PRESS AFR({args.temp:.1f} degC, {args.util:.1f}% util, "
          f"{args.freq:.1f} transitions/day) = {afr:.3f} %")
    return 0


def _cmd_worthwhile(args: argparse.Namespace) -> int:
    from repro.experiments.costmodel import CostAssumptions, evaluate_worthwhileness
    from repro.experiments.runner import ExperimentConfig, make_policy, run_simulation

    config = ExperimentConfig(workload=_workload_config(args))
    fileset, trace = config.generate()
    redundancy = _redundancy_scheme(args)
    scheme = run_simulation(make_policy(args.scheme), fileset, trace,
                            n_disks=args.disks, disk_params=config.disk_params,
                            redundancy=redundancy)
    reference = run_simulation(make_policy(args.reference), fileset, trace,
                               n_disks=args.disks, disk_params=config.disk_params,
                               redundancy=redundancy)
    assumptions = CostAssumptions(
        electricity_usd_per_kwh=args.electricity,
        disk_replacement_usd=args.disk_price,
        data_loss_cost_usd=args.data_value)
    verdict = evaluate_worthwhileness(scheme, reference, assumptions)
    print(f"{args.scheme} vs {args.reference} on {args.disks} disks:")
    print(f"  PRESS max-AFR      : {scheme.array_afr_percent:.3f} % vs "
          f"{reference.array_afr_percent:.3f} % (reference)")
    if verdict.scheme_ctmc is not None and verdict.reference_ctmc is not None:
        sc, rc = verdict.scheme_ctmc, verdict.reference_ctmc
        print(f"  CTMC [{sc.scheme}]    : MTTDL {sc.mttdl_array_years:.3g} yr "
              f"vs {rc.mttdl_array_years:.3g} yr; P(loss, "
              f"{sc.mission_years:g} yr) {sc.p_loss_array:.3g} vs "
              f"{rc.p_loss_array:.3g}")
    print(f"  loss model         : {verdict.loss_model}")
    print(f"  energy saving      : {verdict.energy_saving_usd_per_year:+,.0f} $/yr")
    print(f"  extra failure cost : {verdict.extra_failure_cost_usd_per_year:+,.0f} $/yr")
    print(f"  net benefit        : {verdict.net_benefit_usd_per_year:+,.0f} $/yr")
    print(f"  worthwhile         : {'YES' if verdict.worthwhile else 'no'}")
    return 0 if verdict.worthwhile else 3


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.figures import figure7_comparison
    from repro.experiments.report import write_markdown_report
    from repro.experiments.runner import ExperimentConfig

    if args.verbose:
        from repro.obs import setup_logging

        setup_logging()
    config = ExperimentConfig(workload=_workload_config(args))
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    disk_counts = [int(d) for d in args.disks.split(",")]
    fig7 = figure7_comparison(config, disk_counts=disk_counts, policies=policies,
                              faults=_faults_config(args), jobs=args.jobs,
                              redundancy=_redundancy_scheme(args))
    path = write_markdown_report(fig7, args.out, baseline=args.baseline or None)
    print(f"wrote report -> {path}")
    return 0


def _expand_trace_paths(patterns: list[str]) -> list[str]:
    """Expand globs (sorted, so shard segments merge deterministically);
    literal paths pass through so missing-file errors stay precise."""
    import glob as globmod

    from repro.util.validation import require

    paths: list[str] = []
    for pattern in patterns:
        if any(ch in pattern for ch in "*?["):
            matches = sorted(globmod.glob(pattern))
            require(bool(matches), f"no trace files match {pattern!r}")
            paths.extend(matches)
        else:
            paths.append(pattern)
    return paths


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    if args.obs_command == "summarize":
        from repro.obs import format_summary, summarize_traces

        paths = _expand_trace_paths(args.paths)
        summary = summarize_traces(paths)
        source = ",".join(paths)
        if args.as_json:
            doc = {"source": source, **summary.to_json()}
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(format_summary(summary, source=source))
        return 0
    if args.obs_command == "status":
        from repro.obs import format_status, read_status

        doc = read_status(args.path)
        if args.as_json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(format_status(doc))
        return 0
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workload.synthetic import WorldCupLikeWorkload
    from repro.workload.trace import Trace
    from repro.workload.wc98 import read_wc98, wc98_to_trace

    if args.trace_command == "generate":
        workload = WorldCupLikeWorkload(_workload_config(args))
        fileset, trace = workload.generate()
        trace.to_csv(args.out)
        print(f"wrote {len(trace)} requests over {trace.duration_s:.0f} s "
              f"({len(fileset)} files) -> {args.out}")
        return 0

    if args.trace_command == "info":
        from repro.workload.analysis import analyze_trace

        trace = Trace.from_csv(args.path)
        stats = trace.stats()
        print(f"requests          : {stats.n_requests}")
        print(f"files referenced  : {stats.n_files_referenced}")
        print(f"duration          : {stats.duration_s:.1f} s")
        print(f"mean inter-arrival: {stats.mean_interarrival_s * 1e3:.2f} ms")
        print(f"top-20% share     : {stats.top20_access_fraction:.1%}")
        print(f"theta             : {stats.theta:.4f}")
        print(f"zipf alpha (fit)  : {stats.zipf_alpha:.3f}")
        window = max(stats.duration_s / 20.0, 1.0)
        analysis = analyze_trace(trace, stats.n_files_referenced
                                 if trace.file_ids.max() < stats.n_files_referenced
                                 else int(trace.file_ids.max()) + 1,
                                 window_s=window)
        print(f"windowed ({analysis.window_s:.0f} s x {analysis.n_windows}):")
        print(f"  burstiness (IoD)  : {analysis.index_of_dispersion:.2f}")
        print(f"  mean working set  : {analysis.mean_working_set:.0f} files")
        print(f"  popularity corr   : {analysis.mean_rank_correlation:.3f}")
        print(f"  top-50 overlap    : {analysis.mean_topk_jaccard:.3f}")
        return 0

    if args.trace_command == "convert-wc98":
        records = read_wc98(args.path, max_records=args.max_records)
        fileset, trace = wc98_to_trace(records)
        trace.to_csv(args.out)
        print(f"decoded {len(records)} records -> {len(trace)} requests, "
              f"{len(fileset)} files; trace -> {args.out}")
        return 0

    raise AssertionError(f"unhandled trace command {args.trace_command!r}")


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PRESS + READ disk-array energy/reliability toolkit "
                    "(reproduction of Xie & Sun, IPPS 2008)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run one policy over a synthetic workload")
    p_sim.add_argument("--policy", choices=_policy_names(), default="read")
    p_sim.add_argument("--disks", type=int, default=10)
    p_sim.add_argument("--per-disk", action="store_true",
                       help="also print per-disk ESRRA factors")
    _add_faults_arg(p_sim)
    _add_redundancy_arg(p_sim)
    _add_obs_args(p_sim, profile=True)
    _add_workload_args(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_cmp = sub.add_parser("compare", help="Figure 7 style policy comparison")
    p_cmp.add_argument("--policies", default="read,maid,pdc",
                       help="comma-separated policy names")
    p_cmp.add_argument("--disks", default="6,10,16",
                       help="comma-separated array sizes")
    p_cmp.add_argument("--baseline", default="read",
                       help="policy to compute improvements for ('' = none)")
    p_cmp.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep (1 = in-process serial)")
    p_cmp.add_argument("--verbose", action="store_true",
                       help="log per-cell sweep progress to stderr")
    _add_faults_arg(p_cmp)
    _add_redundancy_arg(p_cmp)
    _add_obs_args(p_cmp)
    _add_workload_args(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_sweep = sub.add_parser(
        "sweep",
        help="Figure 7 sweep under the resilient harness "
             "(checkpointed, resumable, per-cell retries/timeouts)")
    p_sweep.add_argument("--policies", default="read,maid,pdc",
                         help="comma-separated policy names")
    p_sweep.add_argument("--disks", default="6,10,16",
                         help="comma-separated array sizes")
    p_sweep.add_argument("--baseline", default="read",
                         help="policy to compute improvements for ('' = none)")
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the sweep (1 = in-process serial)")
    p_sweep.add_argument("--report", default=None, metavar="FILE",
                         help="also write the markdown report here")
    p_sweep.add_argument("--verbose", action="store_true",
                         help="log per-cell sweep progress to stderr")
    shard_group = p_sweep.add_argument_group("sharding")
    shard_group.add_argument("--shards", type=int, default=None, metavar="N",
                             help="split each array into N independent disk "
                                  "groups simulated as separate streamed "
                                  "sub-cells and merged bit-identically "
                                  "(must divide every --disks entry; "
                                  "incompatible with fault injection)")
    shard_group.add_argument("--assignment", default="affinity",
                             choices=("affinity", "round-robin"),
                             help="file-to-shard assignment: 'affinity' "
                                  "follows the static size-ranked layout "
                                  "(sharded == unsharded for static "
                                  "policies); 'round-robin' spreads by id")
    shard_group.add_argument("--stream-chunk", type=int, default=None,
                             metavar="REQUESTS",
                             help="requests generated per streamed chunk "
                                  "(bounds workload memory; default 65536)")
    res_group = p_sweep.add_argument_group("resilience")
    res_group.add_argument("--checkpoint", default=None, metavar="FILE",
                           help="journal completed cells here (created if "
                                "missing); already-done cells are skipped")
    res_group.add_argument("--resume", default=None, metavar="FILE",
                           help="resume from an existing checkpoint "
                                "(errors if the file does not exist)")
    res_group.add_argument("--retries", type=int, default=2,
                           help="re-queues allowed per cell after a "
                                "crash/failure/timeout (default 2)")
    res_group.add_argument("--retry-backoff", type=float, default=0.25,
                           metavar="SECONDS",
                           help="base exponential backoff between attempts "
                                "(default 0.25)")
    res_group.add_argument("--cell-timeout", type=float, default=None,
                           metavar="SECONDS",
                           help="wall-clock limit per cell attempt "
                                "(enforced with --jobs >= 2)")
    res_group.add_argument("--watchdog", action="store_true",
                           help="arm a faulthandler watchdog in each worker: "
                                "a hung cell dumps all thread stacks to "
                                "stderr before being killed")
    _add_faults_arg(p_sweep)
    _add_redundancy_arg(p_sweep)
    _add_obs_args(p_sweep)
    p_sweep.add_argument("--status-out", default=None, metavar="FILE",
                         help="maintain a live JSON status feed here "
                              "(atomic republish; read it with "
                              "`repro obs status FILE`)")
    _add_workload_args(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_press = sub.add_parser("press", help="evaluate the PRESS reliability model")
    p_press.add_argument("--temp", type=float, default=50.0, help="degC")
    p_press.add_argument("--util", type=float, default=30.0, help="percent")
    p_press.add_argument("--freq", type=float, default=0.0, help="transitions/day")
    p_press.add_argument("--surface", type=float, default=None, metavar="TEMP_C",
                         help="print the Fig. 5 surface at this temperature instead")
    p_press.set_defaults(func=_cmd_press)

    p_worth = sub.add_parser("worthwhile", help="the title question, in dollars")
    p_worth.add_argument("--scheme", choices=_policy_names(), default="read")
    p_worth.add_argument("--reference", choices=_policy_names(), default="static-high")
    p_worth.add_argument("--disks", type=int, default=10)
    p_worth.add_argument("--electricity", type=float, default=0.10,
                         help="$ per kWh (default 0.10)")
    p_worth.add_argument("--disk-price", type=float, default=300.0)
    p_worth.add_argument("--data-value", type=float, default=5_000.0,
                         help="expected $ cost of data lost with a disk")
    _add_redundancy_arg(p_worth)
    _add_workload_args(p_worth)
    p_worth.set_defaults(func=_cmd_worthwhile)

    p_rep = sub.add_parser("report", help="write a markdown comparison report")
    p_rep.add_argument("--out", required=True, help="output markdown path")
    p_rep.add_argument("--policies", default="read,maid,pdc,static-high")
    p_rep.add_argument("--disks", default="6,10,16")
    p_rep.add_argument("--baseline", default="read")
    p_rep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep (1 = in-process serial)")
    p_rep.add_argument("--verbose", action="store_true",
                       help="log per-cell sweep progress to stderr")
    _add_faults_arg(p_rep)
    _add_redundancy_arg(p_rep)
    _add_workload_args(p_rep)
    p_rep.set_defaults(func=_cmd_report)

    p_trace = sub.add_parser("trace", help="generate/inspect/convert traces")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    t_gen = trace_sub.add_parser("generate", help="synthesize a trace to CSV")
    t_gen.add_argument("--out", required=True, help="output CSV path")
    _add_workload_args(t_gen)
    t_gen.set_defaults(func=_cmd_trace)

    t_info = trace_sub.add_parser("info", help="summarize a CSV trace")
    t_info.add_argument("path", help="trace CSV path")
    t_info.set_defaults(func=_cmd_trace)

    t_conv = trace_sub.add_parser("convert-wc98",
                                  help="decode a WC98 binary log to CSV")
    t_conv.add_argument("path", help="WC98 binary file")
    t_conv.add_argument("--out", required=True, help="output CSV path")
    t_conv.add_argument("--max-records", type=int, default=None)
    t_conv.set_defaults(func=_cmd_trace)

    p_obs = sub.add_parser("obs", help="inspect telemetry artifacts")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    o_sum = obs_sub.add_parser("summarize",
                               help="per-disk / per-event-type rollup of one "
                                    "or more JSONL event traces")
    o_sum.add_argument("paths", nargs="+", metavar="PATH",
                       help="trace JSONL path(s); globs like "
                            "'trace.shard*.jsonl' roll per-shard segments "
                            "up as one array-wide view")
    o_sum.add_argument("--json", action="store_true", dest="as_json",
                       help="one machine-readable JSON document on stdout")
    o_sum.set_defaults(func=_cmd_obs)
    o_stat = obs_sub.add_parser("status",
                                help="render a sweep's live status feed "
                                     "(from `repro sweep --status-out`)")
    o_stat.add_argument("path", help="status JSON path")
    o_stat.add_argument("--json", action="store_true", dest="as_json",
                        help="echo the raw status document")
    o_stat.set_defaults(func=_cmd_obs)

    p_lint = sub.add_parser(
        "lint",
        help="determinism & invariant static analysis "
             "(exit 0 clean / 1 findings / 2 error)")
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.experiments.parallel import CellExecutionError
    from repro.experiments.resilience import SweepInterrupted

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SweepInterrupted as exc:
        # completed cells are already flushed; tell the operator how to
        # pick the sweep back up and exit with the conventional SIGINT code
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    except (ValueError, FileNotFoundError, CellExecutionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # downstream consumer (e.g. `| head`) closed stdout mid-print;
        # exit quietly with the conventional SIGPIPE code
        sys.stderr.close()
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
