"""Redundancy-group geometry: membership, replica sets, health.

:class:`RedundancyGroups` binds a :class:`~repro.redundancy.scheme.GroupScheme`
to a concrete array size and answers the pure index questions the fault
path asks: which disks form a group, which hold copies of a primary's
data, which survivors can reconstruct it, and how healthy each group is
under a given up/down predicate.  It deliberately holds no references to
the simulator or the array — callers pass ``is_up`` as a function — so
it stays trivially testable and sits below ``repro.faults`` in the
layering.

Layout conventions
------------------
* Groups are contiguous disk-id blocks: group ``g`` owns disks
  ``[g * group_size, (g + 1) * group_size)``.
* Fault domains slice each group into contiguous blocks of
  ``group_size / fault_domains``; domain ``d`` is array-wide (the d-th
  block of *every* group lives in the same rack/datacenter), so one
  domain outage degrades every group simultaneously — the correlated
  failure mode independent-disk models miss.
* Mirror replica sets are the residue classes of the local index modulo
  ``stride = group_size / replicas``; copy ``i`` of local index ``li``
  sits at ``(li % stride) + i * stride``.  With ``fault_domains ==
  replicas`` (the presets) the domain block size equals ``stride``, so
  the ``i``-th copy of every file lands in the ``i``-th domain —
  exactly the "one replica per datacenter" placement of ``mirror3dc``.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator

from repro.redundancy.scheme import GroupScheme
from repro.util.validation import require

__all__ = ["GroupHealth", "RedundancyGroups"]

#: Up/down predicate over disk ids (the injector passes the array's view).
IsUp = Callable[[int], bool]


class GroupHealth(enum.Enum):
    """Classification of one group's state under the current failures.

    ``HEALTHY``
        every member up.
    ``DEGRADED``
        failures absorbed with slack left (reads reconstruct, but at
        least one more failure is survivable).
    ``CRITICAL``
        exactly at the fault-tolerance edge: data still servable, any
        further failure in the wrong place loses it.
    ``LOST``
        some data in the group has no reconstruction path until rebuild.
    """

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    CRITICAL = "critical"
    LOST = "lost"


class RedundancyGroups:
    """Pure geometry of an array partitioned into redundancy groups."""

    def __init__(self, scheme: GroupScheme, n_disks: int) -> None:
        require(n_disks >= 1, f"n_disks must be >= 1, got {n_disks}")
        require(n_disks % scheme.group_size == 0,
                f"n_disks {n_disks} must be a multiple of the "
                f"{scheme.name!r} group size {scheme.group_size}")
        self.scheme = scheme
        self.n_disks = n_disks
        self.n_groups = n_disks // scheme.group_size
        #: local indices per fault-domain block
        self._domain_block = scheme.group_size // scheme.fault_domains
        #: replica sets per group (mirror); group_size for parity/none
        self._stride = (scheme.group_size // scheme.replicas
                        if scheme.kind == "mirror" else scheme.group_size)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def group_of(self, disk_id: int) -> int:
        """Group index owning ``disk_id``."""
        return disk_id // self.scheme.group_size

    def members(self, group_id: int) -> range:
        """Disk ids of one group, ascending."""
        base = group_id * self.scheme.group_size
        return range(base, base + self.scheme.group_size)

    def domain_of(self, disk_id: int) -> int:
        """Array-wide fault domain of ``disk_id``."""
        return (disk_id % self.scheme.group_size) // self._domain_block

    def disks_in_domain(self, domain: int) -> Iterator[int]:
        """All disks (across every group) in one fault domain."""
        require(0 <= domain < self.scheme.fault_domains,
                f"domain must be in [0, {self.scheme.fault_domains}), got {domain}")
        first = domain * self._domain_block
        for base in range(0, self.n_disks, self.scheme.group_size):
            yield from range(base + first, base + first + self._domain_block)

    def copy_disks(self, disk_id: int) -> tuple[int, ...]:
        """Disks holding (copies or shards of) ``disk_id``'s data.

        Mirror: the replica set.  Parity: every group member (each
        stripe spans the whole group).  None: just the disk itself.
        """
        scheme = self.scheme
        if scheme.kind == "none":
            return (disk_id,)
        base = self.group_of(disk_id) * scheme.group_size
        if scheme.kind == "parity":
            return tuple(self.members(self.group_of(disk_id)))
        local = (disk_id - base) % self._stride
        return tuple(base + local + i * self._stride
                     for i in range(scheme.replicas))

    # ------------------------------------------------------------------
    # degraded-mode serving and rebuild
    # ------------------------------------------------------------------
    def reconstruct_targets(self, primary: int, is_up: IsUp) -> tuple[int, ...]:
        """Disks a degraded read of ``primary``'s data must touch.

        Mirror: the first live copy (a full-size read).  Parity: the
        ``k`` lowest-id live group members other than ``primary`` (one
        shard-sized read each).  Empty tuple when the data is
        unreconstructable — fewer than ``k`` survivors, or no live copy.
        """
        scheme = self.scheme
        if scheme.kind == "none":
            return ()
        if scheme.kind == "mirror":
            for copy in self.copy_disks(primary):
                if copy != primary and is_up(copy):
                    return (copy,)
            return ()
        survivors = [d for d in self.members(self.group_of(primary))
                     if d != primary and is_up(d)]
        if len(survivors) < scheme.data_shards:
            return ()
        return tuple(survivors[:scheme.data_shards])

    def rebuild_sources(self, disk_id: int, is_up: IsUp) -> tuple[int, ...]:
        """Disks a rebuild of ``disk_id`` streams from.

        Mirror: every live copy peer (the copy stream parallelizes).
        Parity: ``k`` live members (each contributes its shard of every
        lost stripe — the k-fold read amplification of erasure rebuild).
        Empty when the group is lost (rebuild then models a cold
        restore, not a reconstruction).
        """
        return self.reconstruct_targets(disk_id, is_up)

    def servable(self, primary: int, is_up: IsUp) -> bool:
        """True when ``primary``'s data is readable right now."""
        return is_up(primary) or bool(self.reconstruct_targets(primary, is_up))

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def health_of(self, group_id: int, is_up: IsUp) -> GroupHealth:
        """Classify one group under the current failure pattern."""
        scheme = self.scheme
        members = self.members(group_id)
        down = sum(1 for d in members if not is_up(d))
        if down == 0:
            return GroupHealth.HEALTHY
        if scheme.kind == "parity":
            tolerance = scheme.fault_tolerance
            if down > tolerance:
                return GroupHealth.LOST
            if down == tolerance:
                return GroupHealth.CRITICAL
            return GroupHealth.DEGRADED
        if scheme.kind == "mirror":
            base = group_id * scheme.group_size
            min_live = min(
                sum(1 for i in range(scheme.replicas)
                    if is_up(base + local + i * self._stride))
                for local in range(self._stride))
            if min_live == 0:
                return GroupHealth.LOST
            if min_live == 1:
                # note: a 2-way mirror is CRITICAL (never DEGRADED) the
                # moment either copy fails — it has no slack
                return GroupHealth.CRITICAL
            return GroupHealth.DEGRADED
        return GroupHealth.LOST  # kind == "none": any failure is loss

    def health_snapshot(self, is_up: IsUp) -> tuple[GroupHealth, ...]:
        """Health of every group, in group order."""
        return tuple(self.health_of(g, is_up) for g in range(self.n_groups))
