"""CTMC reliability of redundancy groups: MTTDL and mission loss risk.

PRESS aggregates array reliability as ``max(per-disk AFR)`` (the paper's
Sec. 3.5 convention).  That is a *component* statement — it says nothing
about how redundancy absorbs failures or how rebuild speed races the
next failure.  This module models each independent data-loss unit (a
parity group, or one replica set of a mirror group) as a birth-death
continuous-time Markov chain:

* state ``j`` = ``j`` members of the unit down, ``0 <= j <= tolerance``;
* failure transitions ``j -> j+1`` at rate ``(n - j) * lambda``
  (surviving members fail independently at the PRESS-derived rate);
* repair transitions ``j -> j-1`` at rate ``j * mu`` (each down member
  rebuilds at the measured rebuild rate, repairs proceed in parallel);
* state ``tolerance + 1`` is absorbing data loss.

MTTDL is the expected absorption time from the all-up state, obtained
from the transient generator ``Q_T`` by solving ``-Q_T t = 1`` —
exact, no simulation.  ``P(loss within mission)`` integrates the same
chain by uniformization (Poisson-weighted powers of the discretized
chain, interval-split so the weights never underflow), pure numpy and
deterministic.

The rates are *physical*: ``lambda`` comes from
:func:`repro.press.hazard.annual_failure_rate_to_rate` on PRESS's
per-disk AFRs (no acceleration factor — acceleration is a simulation
device), and ``mu`` from the measured (or estimated) rebuild hours.

Divergence from max-AFR, by construction: max-AFR is scheme-blind — it
reports the same number for a bare array and a triple mirror.  The CTMC
answers the question the cost model actually asks (how often is data
*lost*), which for ``block4-2`` at realistic rates is orders of
magnitude rarer than a disk failure, and for ``scheme=none`` degenerates
to exactly the per-disk failure rate (the cross-check
:func:`mirror_mttdl_closed_form` and the tests pin both ends).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
import numpy.typing as npt

from repro.press.hazard import annual_failure_rate_to_rate
from repro.redundancy.groups import RedundancyGroups
from repro.redundancy.scheme import GroupScheme
from repro.util.units import SECONDS_PER_YEAR
from repro.util.validation import require, require_positive

__all__ = ["CtmcResult", "HOURS_PER_YEAR", "assess_scheme",
           "loss_probability", "mirror_mttdl_closed_form", "mttdl_years"]

HOURS_PER_YEAR: float = SECONDS_PER_YEAR / 3600.0

#: Uniformization interval splitting: each sub-interval carries at most
#: this much integrated uniformized rate, so ``exp(-rate * dt)`` stays
#: far from underflow and the Poisson tail truncates after ~90 terms.
_MAX_RATE_DT = 30.0
#: Poisson tail weight below which the term series is truncated.
_TAIL_EPS = 1e-16


def _transient_generator(unit_size: int, tolerance: int, lam: float,
                         mu: float) -> npt.NDArray[np.float64]:
    """Generator restricted to the transient states ``0..tolerance``.

    Diagonal entries include the outflow into the absorbing loss state,
    so ``-Q_T @ t = 1`` yields expected absorption times directly.
    """
    dim = tolerance + 1
    q = np.zeros((dim, dim), dtype=np.float64)
    for j in range(dim):
        q[j, j] = -((unit_size - j) * lam + j * mu)
        if j < tolerance:
            q[j, j + 1] = (unit_size - j) * lam
        if j > 0:
            q[j, j - 1] = j * mu
    return q


def mttdl_years(unit_size: int, tolerance: int, lam: float,
                mu: float) -> float:
    """Mean time to data loss (years) of one unit, from the all-up state.

    ``lam``/``mu`` are per-member failure / per-repair rates in events
    per year.  ``lam == 0`` yields ``inf`` (nothing ever fails).
    """
    require(1 <= unit_size, f"unit_size must be >= 1, got {unit_size}")
    require(0 <= tolerance < unit_size,
            f"tolerance must be in [0, unit_size), got {tolerance}")
    require(lam >= 0.0, f"lam must be >= 0, got {lam}")
    require(mu >= 0.0, f"mu must be >= 0, got {mu}")
    if lam <= 0.0:
        return math.inf
    q = _transient_generator(unit_size, tolerance, lam, mu)
    times = np.linalg.solve(-q, np.ones(tolerance + 1, dtype=np.float64))
    return float(times[0])


def loss_probability(unit_size: int, tolerance: int, lam: float, mu: float,
                     years: float) -> float:
    """P(one unit loses data within ``years``), by uniformization.

    Splits the horizon so each sub-interval's uniformized rate mass is
    at most :data:`_MAX_RATE_DT`; within a sub-interval the transition
    operator ``exp(Q_T dt)`` is applied to the state distribution as a
    Poisson-weighted sum of powers of the substochastic DTMC
    ``I + Q_T / rate``.  Pure numpy, deterministic, no underflow for
    any realistic (lam, mu, mission) combination.
    """
    require(years >= 0.0, f"years must be >= 0, got {years}")
    require(lam >= 0.0, f"lam must be >= 0, got {lam}")
    require(mu >= 0.0, f"mu must be >= 0, got {mu}")
    if lam <= 0.0 or years <= 0.0:
        return 0.0
    q = _transient_generator(unit_size, tolerance, lam, mu)
    rate = float(np.max(-np.diag(q)))
    dtmc = np.eye(tolerance + 1, dtype=np.float64) + q / rate
    state = np.zeros(tolerance + 1, dtype=np.float64)
    state[0] = 1.0
    n_steps = max(1, math.ceil(rate * years / _MAX_RATE_DT))
    rate_dt = rate * (years / n_steps)
    for _ in range(n_steps):
        weight = math.exp(-rate_dt)
        power = state
        acc = weight * power
        m = 1
        while True:
            power = power @ dtmc
            weight *= rate_dt / m
            acc = acc + weight * power
            if m >= rate_dt and weight < _TAIL_EPS:
                break
            m += 1
        state = acc
    survival = float(np.sum(state))
    return min(1.0, max(0.0, 1.0 - survival))


def mirror_mttdl_closed_form(lam: float, mu: float) -> float:
    """Closed-form MTTDL (years) of a 2-way mirror: ``(3*lam + mu) / (2*lam^2)``.

    The textbook repair-before-second-failure result (Gibson's RAID-1
    derivation; PAPERS.md's Markov storage-reliability line): starting
    with both copies up, expected time until both are simultaneously
    down.  The CTMC with ``unit_size=2, tolerance=1`` must reproduce it
    exactly — the property test in ``tests/redundancy`` pins that.
    """
    require_positive(lam, "lam")
    require(mu >= 0.0, f"mu must be >= 0, got {mu}")
    return (3.0 * lam + mu) / (2.0 * lam * lam)


@dataclass(frozen=True, slots=True)
class CtmcResult:
    """Array-level reliability of one scheme under the CTMC model.

    Frozen and built from plain floats so it survives the pickle hop of
    the parallel sweep executor.
    """

    #: Scheme name the assessment describes.
    scheme: str
    #: Independent data-loss units in the array (groups, or replica sets).
    n_units: int
    #: Disks per unit.
    unit_size: int
    #: Failures one unit absorbs without loss.
    tolerance: int
    #: Worst per-disk failure rate used (events/year, PRESS-derived).
    failure_rate_per_year: float
    #: Rebuild (repair) rate per down disk (events/year).
    rebuild_rate_per_year: float
    #: Rebuild duration the rate was derived from (hours).
    rebuild_hours: float
    #: MTTDL of the worst single unit (years).
    mttdl_unit_years: float
    #: MTTDL of the whole array (years; units race independently).
    mttdl_array_years: float
    #: P(the worst unit loses data within the mission).
    p_loss_unit: float
    #: P(any unit loses data within the mission).
    p_loss_array: float
    #: Mission horizon the probabilities integrate over (years).
    mission_years: float

    @property
    def loss_events_per_year(self) -> float:
        """Long-run data-loss incidents per year (0 when MTTDL is inf)."""
        if not math.isfinite(self.mttdl_array_years):
            return 0.0
        return 1.0 / self.mttdl_array_years

    def summary_row(self) -> dict[str, object]:
        """Flat dict for tabular reporting."""
        return {
            "ctmc_scheme": self.scheme,
            "mttdl_array_years": (float("inf")
                                  if not math.isfinite(self.mttdl_array_years)
                                  else round(self.mttdl_array_years, 3)),
            "p_loss_mission": self.p_loss_array,
            "mission_years": self.mission_years,
            "rebuild_hours": round(self.rebuild_hours, 3),
        }


def _loss_units(scheme: GroupScheme,
                groups: RedundancyGroups) -> list[tuple[int, ...]]:
    """Disk-id tuples of every independent data-loss unit."""
    units: list[tuple[int, ...]] = []
    for g in range(groups.n_groups):
        members = groups.members(g)
        if scheme.kind != "mirror":
            units.append(tuple(members))
            continue
        stride = scheme.group_size // scheme.replicas
        base = members.start
        for local in range(stride):
            units.append(tuple(base + local + i * stride
                               for i in range(scheme.replicas)))
    return units


def assess_scheme(scheme: GroupScheme,
                  per_disk_afr_percent: Sequence[float], *,
                  rebuild_hours: float,
                  mission_years: float = 1.0) -> CtmcResult:
    """Assess one scheme over an array's PRESS per-disk AFRs.

    Each unit's failure rate is the *max* of its members' converted
    rates — PRESS's "least reliable disk" convention applied at the
    unit level, so the CTMC disagrees with max-AFR only where the
    redundancy math itself does.  ``rebuild_hours`` should be the
    measured mean rebuild duration of the run (or a transfer-time
    estimate when no rebuild happened).
    """
    require(len(per_disk_afr_percent) >= 1,
            "per_disk_afr_percent must not be empty")
    require_positive(rebuild_hours, "rebuild_hours")
    require_positive(mission_years, "mission_years")
    groups = RedundancyGroups(scheme, len(per_disk_afr_percent))
    rates = [annual_failure_rate_to_rate(a) for a in per_disk_afr_percent]
    mu = HOURS_PER_YEAR / rebuild_hours
    unit_size = scheme.loss_unit_size
    tolerance = scheme.fault_tolerance

    hazard_sum = 0.0
    worst_mttdl = math.inf
    worst_p = 0.0
    log_survival = 0.0
    cache: dict[float, tuple[float, float]] = {}
    units = _loss_units(scheme, groups)
    for unit in units:
        lam = max(rates[d] for d in unit)
        if lam not in cache:
            cache[lam] = (
                mttdl_years(unit_size, tolerance, lam, mu),
                loss_probability(unit_size, tolerance, lam, mu, mission_years),
            )
        mttdl_u, p_u = cache[lam]
        if math.isfinite(mttdl_u):
            hazard_sum += 1.0 / mttdl_u
        worst_mttdl = min(worst_mttdl, mttdl_u)
        worst_p = max(worst_p, p_u)
        # accumulate in log space: sum log(1-p) is stable for tiny p
        log_survival += math.log1p(-min(p_u, 1.0 - 1e-15))

    return CtmcResult(
        scheme=scheme.name,
        n_units=len(units),
        unit_size=unit_size,
        tolerance=tolerance,
        failure_rate_per_year=max(rates),
        rebuild_rate_per_year=mu,
        rebuild_hours=rebuild_hours,
        mttdl_unit_years=worst_mttdl,
        mttdl_array_years=(math.inf if hazard_sum <= 0.0 else 1.0 / hazard_sum),
        p_loss_unit=worst_p,
        p_loss_array=min(1.0, max(0.0, 1.0 - math.exp(log_survival))),
        mission_years=mission_years,
    )
