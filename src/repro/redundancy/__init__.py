"""Redundancy groups: k-of-n erasure / mirror layouts and their reliability.

The paper's fault model is mirror-only and its array reliability is
"max per-disk AFR" (Sec. 3.5).  This package supplies what that elides:

* :mod:`repro.redundancy.scheme` — declarative :class:`GroupScheme`
  descriptions (``mirror2``, ``mirror3dc``, ``block4-2``) with storage
  overhead, fault tolerance, and fault-domain layout;
* :mod:`repro.redundancy.groups` — :class:`RedundancyGroups`, the pure
  disk-index geometry (group membership, replica sets, reconstruction
  and rebuild source selection, group health classification);
* :mod:`repro.redundancy.ctmc` — a continuous-time Markov-chain
  reliability model (MTTDL and P(data loss within mission time)) that
  cross-checks PRESS's max-AFR aggregation inside the cost model;
* :mod:`repro.redundancy.metrics` — the run-level tracker/summary pair
  mirroring :mod:`repro.faults.metrics`.

Layering: the package sits between ``repro.press`` (whose hazard
conversion it reuses) and ``repro.faults`` / ``repro.experiments``
(which consume it); it never imports the simulation kernel.
"""

from repro.redundancy.ctmc import CtmcResult, assess_scheme, mirror_mttdl_closed_form
from repro.redundancy.groups import GroupHealth, RedundancyGroups
from repro.redundancy.metrics import RedundancySummary, RedundancyTracker
from repro.redundancy.scheme import (
    GroupScheme,
    SCHEME_PRESETS,
    parse_redundancy_spec,
)

__all__ = [
    "CtmcResult",
    "GroupHealth",
    "GroupScheme",
    "RedundancyGroups",
    "RedundancySummary",
    "RedundancyTracker",
    "SCHEME_PRESETS",
    "assess_scheme",
    "mirror_mttdl_closed_form",
    "parse_redundancy_spec",
]
