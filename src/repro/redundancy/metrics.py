"""Redundancy accounting: in-run tracker and its frozen summary.

Mirrors the split of :mod:`repro.faults.metrics`: the injector mutates a
:class:`RedundancyTracker` as group states change and degraded reads
reconstruct; the runner freezes it (together with the CTMC assessment)
into a picklable :class:`RedundancySummary` on the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.redundancy.ctmc import CtmcResult
from repro.redundancy.groups import GroupHealth

__all__ = ["RedundancySummary", "RedundancyTracker"]


@dataclass(frozen=True, slots=True)
class RedundancySummary:
    """Redundancy-path outcome of one run (plus the CTMC assessment)."""

    #: Scheme name the run was laid out under.
    scheme: str
    #: Redundancy groups in the array.
    n_groups: int
    #: Health of each group at end of run, as enum values ("healthy"...).
    final_states: tuple[str, ...]
    #: Every group-health transition, as (time_s, group, from, to) in
    #: occurrence order — deterministic at fixed seed, pinned by goldens.
    state_changes: tuple[tuple[float, int, str, str], ...]
    #: Degraded user reads served by reconstruction (mirror or parity).
    reconstruct_reads: int
    #: Internal read legs those reconstructions fanned out (k per parity
    #: read, 1 per mirror read).
    reconstruct_legs: int
    #: Internal read legs fanned across survivors by rebuilds.
    rebuild_read_legs: int
    #: Correlated fault-domain outages injected.
    domain_outages: int
    #: Transitions into the LOST state summed over groups.
    groups_lost_events: int
    #: CTMC reliability assessment (None only when assessment failed).
    ctmc: Optional[CtmcResult]

    def state_counts(self) -> dict[str, int]:
        """Final group states, tallied by health name."""
        counts = {health.value: 0 for health in GroupHealth}
        for state in self.final_states:
            counts[state] += 1
        return counts

    def summary_row(self) -> dict[str, object]:
        """Flat dict for tabular reporting (merged into the result row)."""
        counts = self.state_counts()
        row: dict[str, object] = {
            "redundancy": self.scheme,
            "groups_degraded": counts[GroupHealth.DEGRADED.value],
            "groups_critical": counts[GroupHealth.CRITICAL.value],
            "groups_lost": counts[GroupHealth.LOST.value],
            "reconstruct_reads": self.reconstruct_reads,
            "reconstruct_legs": self.reconstruct_legs,
            "rebuild_read_legs": self.rebuild_read_legs,
            "domain_outages": self.domain_outages,
        }
        if self.ctmc is not None:
            row.update(self.ctmc.summary_row())
        return row


@dataclass(slots=True)
class RedundancyTracker:
    """Mutable counters the injector updates as the run unfolds."""

    state_changes: list[tuple[float, int, str, str]] = field(default_factory=list)
    reconstruct_reads: int = 0
    reconstruct_legs: int = 0
    rebuild_read_legs: int = 0
    domain_outages: int = 0
    groups_lost_events: int = 0
    #: summed rebuild durations (failure-replacement to data restored)
    rebuild_seconds_total: float = 0.0
    rebuilds_timed: int = 0

    def record_state_change(self, now: float, group_id: int,
                            old: GroupHealth, new: GroupHealth) -> None:
        """Group ``group_id`` moved between health states at ``now``."""
        self.state_changes.append((now, group_id, old.value, new.value))
        if new is GroupHealth.LOST:
            self.groups_lost_events += 1

    def record_rebuild_duration(self, seconds: float) -> None:
        """One rebuild's data-restoration stream took ``seconds``."""
        self.rebuild_seconds_total += seconds
        self.rebuilds_timed += 1

    def mean_rebuild_s(self) -> Optional[float]:
        """Mean measured rebuild duration, None when none completed."""
        if self.rebuilds_timed == 0:
            return None
        return self.rebuild_seconds_total / self.rebuilds_timed

    def summarize(self, *, scheme: str, n_groups: int,
                  final_states: tuple[str, ...],
                  ctmc: Optional[CtmcResult]) -> RedundancySummary:
        """Freeze the counters into a picklable :class:`RedundancySummary`."""
        return RedundancySummary(
            scheme=scheme,
            n_groups=n_groups,
            final_states=final_states,
            state_changes=tuple(self.state_changes),
            reconstruct_reads=self.reconstruct_reads,
            reconstruct_legs=self.reconstruct_legs,
            rebuild_read_legs=self.rebuild_read_legs,
            domain_outages=self.domain_outages,
            groups_lost_events=self.groups_lost_events,
            ctmc=ctmc,
        )
