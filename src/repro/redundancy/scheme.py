"""Declarative redundancy-group schemes and the ``--redundancy`` parser.

A :class:`GroupScheme` says how data is laid out inside one group of
disks and how many failures the layout survives; it carries no array
state (that is :class:`repro.redundancy.groups.RedundancyGroups`).  The
presets follow the ydb naming the roadmap cites:

``mirror2`` / ``mirrorN``
    N full copies, each replica in its own fault domain; survives N-1
    failures of one replica set at Nx storage.
``mirror3dc``
    Nine disks per group, three replica sets of three, each set spanning
    three datacenter fault domains; survives any full-domain outage plus
    one more disk, at 3x storage.
``block4-2``
    Reed-Solomon-style 6-of-8 parity: eight disks per group (one per
    rack fault domain), any six reconstruct the data; survives any two
    failures at 1.5x storage.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.util.validation import require, require_positive

__all__ = ["GroupScheme", "SCHEME_PRESETS", "mirror_scheme",
           "parse_redundancy_spec"]

#: Scheme kinds: ``none`` (single copy), ``mirror`` (full replicas),
#: ``parity`` (k-of-n erasure coding).
_KINDS = ("none", "mirror", "parity")


@dataclass(frozen=True, slots=True)
class GroupScheme:
    """One redundancy layout, described declaratively.

    Attributes
    ----------
    name:
        Registry/CLI name (``"block4-2"``, ``"mirror3dc"``, ...).
    kind:
        ``"none"``, ``"mirror"``, or ``"parity"``.
    group_size:
        Disks per redundancy group; the array size must be a multiple.
    data_shards:
        ``k``: live group members needed to serve or reconstruct a
        file.  1 for mirrors (any copy suffices), ``k < group_size``
        for parity codes.
    replicas:
        Full copies of each file inside the group (mirror kinds);
        1 for parity/none.  Mirror groups split into
        ``group_size / replicas`` independent replica sets.
    fault_domains:
        Failure-correlated domains the group spans (racks or
        datacenters); a domain outage fails every member in that
        domain at once.  Members are assigned to domains in contiguous
        blocks of ``group_size / fault_domains``.
    storage_overhead:
        Raw-to-usable ratio (1.0 = none, mirrors = ``replicas``,
        ``block4-2`` = 8/6 rounded to 1.5 by its designers — we keep
        the exact 4/3-style ratio the preset declares).
    """

    name: str
    kind: str
    group_size: int
    data_shards: int
    replicas: int
    fault_domains: int
    storage_overhead: float

    def __post_init__(self) -> None:
        require(self.kind in _KINDS,
                f"kind must be one of {_KINDS}, got {self.kind!r}")
        require_positive(self.group_size, "group_size")
        require(1 <= self.data_shards <= self.group_size,
                f"data_shards must be in [1, group_size], got {self.data_shards}")
        require_positive(self.replicas, "replicas")
        require_positive(self.fault_domains, "fault_domains")
        require(self.group_size % self.fault_domains == 0,
                f"group_size {self.group_size} must be a multiple of "
                f"fault_domains {self.fault_domains}")
        require(self.storage_overhead >= 1.0,
                f"storage_overhead must be >= 1, got {self.storage_overhead}")
        if self.kind == "none":
            require(self.group_size == 1 and self.replicas == 1
                    and self.data_shards == 1,
                    "scheme 'none' must be a single-disk group")
        elif self.kind == "mirror":
            require(self.data_shards == 1,
                    "mirror schemes serve from any single copy (data_shards=1)")
            require(self.replicas >= 2,
                    f"mirror schemes need >= 2 replicas, got {self.replicas}")
            require(self.group_size % self.replicas == 0,
                    f"group_size {self.group_size} must be a multiple of "
                    f"replicas {self.replicas}")
        else:  # parity
            require(self.replicas == 1,
                    "parity schemes carry one copy plus parity (replicas=1)")
            require(self.data_shards < self.group_size,
                    "parity schemes need data_shards < group_size")

    # ------------------------------------------------------------------
    # derived geometry
    # ------------------------------------------------------------------
    @property
    def is_redundant(self) -> bool:
        """True when the scheme survives at least one disk failure."""
        return self.fault_tolerance > 0

    @property
    def fault_tolerance(self) -> int:
        """Worst-case disk failures any group survives without data loss.

        Parity: ``n - k``.  Mirror: ``replicas - 1`` (failures aimed at
        one replica set; other sets' members don't help that set's data).
        """
        if self.kind == "parity":
            return self.group_size - self.data_shards
        if self.kind == "mirror":
            return self.replicas - 1
        return 0

    @property
    def loss_unit_size(self) -> int:
        """Disks in one independent data-loss unit (the CTMC's chain).

        A parity group loses data as a whole (any ``tolerance + 1``
        members); a mirror group splits into replica sets that each
        lose data independently.
        """
        return self.replicas if self.kind == "mirror" else self.group_size

    @property
    def loss_units_per_group(self) -> int:
        """Independent loss units inside one group."""
        return self.group_size // self.loss_unit_size

    @property
    def reconstruct_legs(self) -> int:
        """Disks a degraded read touches: 1 for mirrors, ``k`` for parity."""
        return self.data_shards if self.kind == "parity" else 1


def mirror_scheme(replicas: int) -> GroupScheme:
    """``mirrorN``: N copies, each in its own fault domain."""
    require(replicas >= 2, f"mirrorN needs N >= 2, got {replicas}")
    return GroupScheme(
        name=f"mirror{replicas}", kind="mirror", group_size=replicas,
        data_shards=1, replicas=replicas, fault_domains=replicas,
        storage_overhead=float(replicas))


#: Named presets accepted by ``--redundancy`` (plus the ``mirrorN`` family).
SCHEME_PRESETS: dict[str, GroupScheme] = {
    "none": GroupScheme(name="none", kind="none", group_size=1,
                        data_shards=1, replicas=1, fault_domains=1,
                        storage_overhead=1.0),
    "mirror2": mirror_scheme(2),
    "mirror3": mirror_scheme(3),
    "mirror3dc": GroupScheme(name="mirror3dc", kind="mirror", group_size=9,
                             data_shards=1, replicas=3, fault_domains=3,
                             storage_overhead=3.0),
    "block4-2": GroupScheme(name="block4-2", kind="parity", group_size=8,
                            data_shards=6, replicas=1, fault_domains=8,
                            storage_overhead=1.5),
}

_MIRROR_N = re.compile(r"^mirror(\d+)$")


def parse_redundancy_spec(spec: str) -> GroupScheme:
    """Parse the CLI ``--redundancy`` value into a :class:`GroupScheme`.

    Accepts the preset names (``none``, ``mirror3dc``, ``block4-2``) and
    the ``mirrorN`` family for any N >= 2.  Unknown names raise
    :class:`ValueError` (the CLI maps that to exit code 2).
    """
    text = spec.strip().lower()
    if not text:
        raise ValueError("--redundancy spec must not be empty "
                         "(use 'none' to disable)")
    if text in SCHEME_PRESETS:
        return SCHEME_PRESETS[text]
    match = _MIRROR_N.match(text)
    if match:
        replicas = int(match.group(1))
        if replicas < 2:
            raise ValueError(f"mirrorN needs N >= 2, got {text!r}")
        return mirror_scheme(replicas)
    known = ", ".join(sorted(SCHEME_PRESETS))
    raise ValueError(f"unknown --redundancy scheme {text!r}; "
                     f"known: {known} (or mirrorN)")
