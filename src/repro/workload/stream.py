"""Constant-memory streaming workloads (chunked request generation).

Every sweep used to materialize its full request list before simulating —
two float64/int64 arrays per trace, ~16 bytes a request, which caps the
reachable scale long before the SoA kernel does.  This module converts
workload generation to *chunked iteration*: a stream yields
:class:`TraceChunk` blocks whose concatenation is bit-identical to the
materialized :class:`~repro.workload.trace.Trace`, while peak state is
one chunk plus the bounded popularity tables.

Two implementations of the :class:`RequestStream` protocol:

* :class:`SyntheticStream` — the chunked twin of
  :class:`~repro.workload.synthetic.WorldCupLikeWorkload`.  Bit-identity
  with the batch path rests on three properties, each pinned by a
  hypothesis test in ``tests/workload/test_stream.py``:

  1. *RNG prefix stability*: ``Generator.exponential``/``random`` drawn
     in consecutive slices produce the same values as one large draw, so
     chunked arrival/rank sampling consumes the identical bitstream.
     Bursty runs additionally clamp run lengths against the *global*
     request count (:func:`~repro.workload.arrival.onoff_bursty_gap_runs`).
  2. *cumsum carry*: ``np.cumsum`` accumulates sequentially, so adding
     the running total into the first gap of each chunk **before** the
     chunk-local cumsum reproduces the batch float-op grouping exactly.
  3. *RNG pre-pass*: the batch path draws all arrivals, then all ranks,
     from one generator.  The stream clones the seed and runs the
     arrival draws to exhaustion (discarding them) to position the rank
     generator, trading one cheap extra pass for O(chunk) memory.

* :class:`WC98Stream` — the chunked twin of
  :func:`~repro.workload.wc98.wc98_to_trace` over the binary WorldCup98
  format, built on :func:`~repro.workload.wc98.iter_wc98_chunks`.  A
  first pass scans filter survivors for the count, start time, and the
  dense id/size tables (bounded by the distinct-object count); the
  second pass streams filtered chunks.  Timestamps must already be
  non-decreasing after filtering — the batch path's stable sort is the
  identity there, and a streaming reader cannot sort without
  materializing, so out-of-order input is an error rather than a silent
  divergence.

The frozen *spec* types (:class:`SyntheticStreamSpec`,
:class:`WC98StreamSpec`) are the picklable, digestible handles the
experiment layer passes around in place of realized arrays; the workload
cache keys on their canonical content (chunk size never enters the
digest — see ``repro.workload.cache``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, Union, runtime_checkable

import numpy as np

from repro.util.rngtools import rng_from
from repro.util.validation import require
from repro.workload.arrival import onoff_bursty_gap_runs
from repro.workload.files import FileSet
from repro.workload.synthetic import SyntheticWorkloadConfig, WorldCupLikeWorkload
from repro.workload.trace import Trace
from repro.workload.wc98 import (DEFAULT_RECORDS_PER_CHUNK, METHOD_GET,
                                 iter_wc98_chunks)
from repro.workload.zipf import zipf_cdf

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "TraceChunk",
    "RequestStream",
    "SyntheticStream",
    "WC98Stream",
    "SyntheticStreamSpec",
    "WC98StreamSpec",
    "StreamSpec",
    "WorkloadLike",
    "open_stream",
    "materialize",
]

#: Requests per yielded chunk (~1 MB of trace arrays) — the default for
#: every streaming consumer; any value produces the same concatenated
#: trace, this one just balances numpy efficiency against peak RSS.
DEFAULT_CHUNK_SIZE = 65_536


@dataclass(frozen=True, slots=True)
class TraceChunk:
    """One block of a streamed trace: absolute times + dense file ids.

    Chunks carry *absolute* arrival times (the stream owns the cumsum
    carry), so consumers never need to re-base; concatenating the fields
    of every chunk reproduces ``Trace.times_s`` / ``Trace.file_ids``.
    """

    times_s: np.ndarray
    file_ids: np.ndarray

    def __len__(self) -> int:
        return self.times_s.size


@runtime_checkable
class RequestStream(Protocol):
    """Chunked generator protocol both workload sources implement.

    Contract: ``chunks()`` may yield blocks of *any* sizes (consumers
    must only rely on the concatenation), every yielded array is safe to
    read until the next iteration step, and iterating twice from a fresh
    ``chunks()`` call yields the identical sequence.
    """

    @property
    def fileset(self) -> FileSet: ...

    @property
    def n_requests(self) -> int: ...

    def chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[TraceChunk]: ...


# ----------------------------------------------------------------------
# synthetic stream
# ----------------------------------------------------------------------
def _gap_runs(cfg: SyntheticWorkloadConfig, rng: np.random.Generator,
              chunk_size: int) -> Iterator[np.ndarray]:
    """Inter-arrival gaps in generation order, bounded-memory.

    Consumes ``rng`` exactly as the batch arrival samplers do (same
    draws, same order), which is what lets a second pass over this
    generator position the rank RNG.
    """
    n = cfg.n_requests
    if cfg.bursty:
        yield from onoff_bursty_gap_runs(n, cfg.mean_interarrival_s, seed=rng)
        return
    i = 0
    while i < n:
        take = min(chunk_size, n - i)
        yield rng.exponential(cfg.mean_interarrival_s, size=take)
        i += take


def _rechunk(runs: Iterable[np.ndarray], chunk_size: int) -> Iterator[np.ndarray]:
    """Reassemble arbitrarily-sized runs into owned ``chunk_size`` blocks."""
    buf: list[np.ndarray] = []
    have = 0
    for arr in runs:
        buf.append(arr)
        have += arr.size
        while have >= chunk_size:
            out = np.empty(chunk_size, dtype=np.float64)
            filled = 0
            while filled < chunk_size:
                head = buf[0]
                take = min(head.size, chunk_size - filled)
                out[filled:filled + take] = head[:take]
                if take == head.size:
                    buf.pop(0)
                else:
                    buf[0] = head[take:]
                filled += take
            have -= chunk_size
            yield out
    if have:
        out = np.empty(have, dtype=np.float64)
        filled = 0
        for head in buf:
            out[filled:filled + head.size] = head
            filled += head.size
        yield out


class SyntheticStream:
    """Chunked twin of :class:`WorldCupLikeWorkload` — bit-identical output.

    ``materialize(SyntheticStream(cfg))`` equals
    ``WorldCupLikeWorkload(cfg).generate()`` array-for-array for every
    config and every chunk size; peak per-request state is one chunk.
    The popularity tables (drift orders, Zipf CDF) are O(n_files *
    drift_segments) and built once per ``chunks()`` call.
    """

    def __init__(self, config: SyntheticWorkloadConfig) -> None:
        self.config = config
        self._workload = WorldCupLikeWorkload(config)
        self._fileset: FileSet | None = None

    @property
    def fileset(self) -> FileSet:
        if self._fileset is None:
            self._fileset = self._workload.build_fileset()
        return self._fileset

    @property
    def n_requests(self) -> int:
        return self.config.n_requests

    def chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[TraceChunk]:
        require(chunk_size >= 1, f"chunk_size must be >= 1, got {chunk_size}")
        cfg = self.config
        fileset = self.fileset
        orders = self._workload.drifted_orders(fileset)
        bounds = np.linspace(0, cfg.n_requests, len(orders) + 1).astype(np.int64)
        cdf = zipf_cdf(len(fileset), cfg.zipf_alpha)

        # rank RNG pre-pass: replay the arrival draws (discarded) so the
        # generator sits exactly where the batch path's sits when it
        # starts sampling ranks
        rng_ranks = rng_from(cfg.seed + 2)
        for _ in _gap_runs(cfg, rng_ranks, chunk_size):
            pass

        rng_arrivals = rng_from(cfg.seed + 2)
        carry = 0.0
        start = 0
        for chunk_gaps in _rechunk(_gap_runs(cfg, rng_arrivals, chunk_size),
                                   chunk_size):
            n = chunk_gaps.size
            # fold the running total into the first gap *before* the
            # chunk-local cumsum: the accumulator then takes the same
            # float additions, in the same order, as one global cumsum
            chunk_gaps[0] += carry
            times = np.cumsum(chunk_gaps)
            carry = float(times[-1])

            u = rng_ranks.random(n)
            ranks = np.searchsorted(cdf, u, side="right").astype(np.int64)
            file_ids = np.empty(n, dtype=np.int64)
            pos = start
            while pos < start + n:
                seg = int(np.searchsorted(bounds, pos, side="right")) - 1
                hi = min(int(bounds[seg + 1]), start + n)
                sl = slice(pos - start, hi - start)
                file_ids[sl] = orders[seg][ranks[sl]]
                pos = hi
            start += n
            yield TraceChunk(times, file_ids)


# ----------------------------------------------------------------------
# WC98 stream
# ----------------------------------------------------------------------
class WC98Stream:
    """Chunked twin of :func:`wc98_to_trace` over a WC98 binary log.

    Construction performs the bounded scan pass (filter survivors
    counted, start time and the dense object-id/size tables collected);
    ``chunks()`` then streams filtered, re-based, densely-remapped
    blocks.  Requires post-filter timestamps to be non-decreasing (see
    the module docstring); matches the batch converter exactly on such
    files.
    """

    def __init__(self, path: str, *, methods: tuple[int, ...] = (METHOD_GET,),
                 min_size_bytes: int = 1,
                 records_per_chunk: int = DEFAULT_RECORDS_PER_CHUNK) -> None:
        require(min_size_bytes >= 0,
                f"min_size_bytes must be >= 0, got {min_size_bytes}")
        self.path = str(path)
        self.methods = tuple(methods)
        self.min_size_bytes = int(min_size_bytes)
        self._records_per_chunk = records_per_chunk
        self._scan()

    # ------------------------------------------------------------------
    def _keep_mask(self, arr: np.ndarray) -> np.ndarray:
        mask = np.isin(arr["method"].astype(np.int64),
                       np.array(self.methods, dtype=np.int64))
        return mask & (arr["size"].astype(np.int64) >= self.min_size_bytes)

    def _scan(self) -> None:
        size_by_id: dict[int, int] = {}
        n_total = 0
        n_kept = 0
        t0: int | None = None
        last_ts: int | None = None
        for arr in iter_wc98_chunks(self.path,
                                    records_per_chunk=self._records_per_chunk):
            n_total += arr.size
            kept = arr[self._keep_mask(arr)]
            if kept.size == 0:
                continue
            ts = kept["timestamp"].astype(np.int64)
            if ((last_ts is not None and int(ts[0]) < last_ts)
                    or bool(np.any(np.diff(ts) < 0))):
                raise ValueError(
                    f"WC98 streaming requires timestamps sorted non-decreasing "
                    f"after filtering; {self.path} is out of order near kept "
                    f"record {n_kept}")
            if t0 is None:
                t0 = int(ts[0])
            last_ts = int(ts[-1])
            ids = kept["object_id"].astype(np.int64)
            sizes = kept["size"].astype(np.int64)
            uniq, inv = np.unique(ids, return_inverse=True)
            chunk_max = np.zeros(uniq.size, dtype=np.int64)
            np.maximum.at(chunk_max, inv, sizes)
            for oid, size in zip(uniq.tolist(), chunk_max.tolist()):
                prev = size_by_id.get(oid)
                if prev is None or size > prev:
                    size_by_id[oid] = size
            n_kept += int(kept.size)
        require(n_total > 0, "no records to convert")
        require(n_kept > 0, "no records survive filtering")
        assert t0 is not None
        self._n_requests = n_kept
        self._t0 = t0
        self._unique_ids = np.array(sorted(size_by_id), dtype=np.int64)
        sizes_mb = np.array([float(size_by_id[int(i)]) for i in self._unique_ids],
                            dtype=np.float64)
        sizes_mb /= 1.0e6  # bytes -> MB, matching wc98_to_trace
        self._fileset = FileSet(sizes_mb)

    # ------------------------------------------------------------------
    @property
    def fileset(self) -> FileSet:
        return self._fileset

    @property
    def n_requests(self) -> int:
        return self._n_requests

    @property
    def t0(self) -> int:
        """Epoch second of the first kept record (trace time zero)."""
        return self._t0

    def chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[TraceChunk]:
        require(chunk_size >= 1, f"chunk_size must be >= 1, got {chunk_size}")
        for arr in iter_wc98_chunks(self.path, records_per_chunk=chunk_size):
            kept = arr[self._keep_mask(arr)]
            if kept.size == 0:
                continue
            times = (kept["timestamp"].astype(np.int64)
                     - self._t0).astype(np.float64)
            dense = np.searchsorted(self._unique_ids,
                                    kept["object_id"].astype(np.int64))
            yield TraceChunk(times, dense.astype(np.int64))


# ----------------------------------------------------------------------
# specs: the picklable handles the experiment layer passes around
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SyntheticStreamSpec:
    """Streamed form of a synthetic workload config.

    Carries no realized arrays; ``open()`` builds the generator.  Its
    cache digest is defined to equal ``workload_key(config)`` so the
    streamed and materialized forms share one cache entry (they produce
    bit-identical traces).
    """

    config: SyntheticWorkloadConfig

    def open(self) -> SyntheticStream:
        return SyntheticStream(self.config)


@dataclass(frozen=True, slots=True)
class WC98StreamSpec:
    """Streamed form of a WC98 binary trace file."""

    path: str
    methods: tuple[int, ...] = (METHOD_GET,)
    min_size_bytes: int = 1

    def open(self) -> WC98Stream:
        return WC98Stream(self.path, methods=self.methods,
                          min_size_bytes=self.min_size_bytes)


StreamSpec = Union[SyntheticStreamSpec, WC98StreamSpec]
WorkloadLike = Union[SyntheticWorkloadConfig, SyntheticStreamSpec, WC98StreamSpec]


def open_stream(workload: Union[WorkloadLike, RequestStream]) -> RequestStream:
    """Coerce a config, spec, or already-open stream to a :class:`RequestStream`."""
    if isinstance(workload, SyntheticWorkloadConfig):
        return SyntheticStream(workload)
    if isinstance(workload, (SyntheticStreamSpec, WC98StreamSpec)):
        return workload.open()
    return workload


def materialize(workload: Union[WorkloadLike, RequestStream],
                chunk_size: int = DEFAULT_CHUNK_SIZE) -> tuple[FileSet, Trace]:
    """Drain a stream into a realized ``(FileSet, Trace)`` pair.

    The compatibility bridge for consumers that still need whole arrays
    (the workload cache's disk store, small runs, tests); by the stream
    contract the result is bit-identical to the batch generators.
    """
    stream = open_stream(workload)
    times: list[np.ndarray] = []
    ids: list[np.ndarray] = []
    for chunk in stream.chunks(chunk_size):
        times.append(chunk.times_s)
        ids.append(chunk.file_ids)
    times_all = (np.concatenate(times) if times
                 else np.empty(0, dtype=np.float64))
    ids_all = (np.concatenate(ids) if ids
               else np.empty(0, dtype=np.int64))
    return stream.fileset, Trace(times_all, ids_all)
