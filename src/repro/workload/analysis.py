"""Windowed trace analysis: the workload properties the policies feel.

The evaluation's dynamics hinge on workload features a whole-trace
summary hides: burstiness (drives idleness-threshold churn), popularity
churn between windows (drives MAID misses and PDC/READ migrations), and
working-set size (drives cache sizing).  This module computes them per
window, so an experimenter can *measure* whether a trace sits in the
regime a policy was tuned for.

All functions take the window length in seconds and operate on the
numpy arrays inside :class:`~repro.workload.trace.Trace` — no Python
loops over requests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sstats

from repro.util.validation import require, require_positive
from repro.workload.trace import Trace

__all__ = [
    "windowed_request_counts",
    "index_of_dispersion",
    "working_set_sizes",
    "popularity_churn",
    "TraceAnalysis",
    "analyze_trace",
]


def _window_index(trace: Trace, window_s: float) -> tuple[np.ndarray, int]:
    require_positive(window_s, "window_s")
    require(len(trace) >= 1, "empty trace")
    idx = np.floor_divide(trace.times_s, window_s).astype(np.int64)
    n_windows = int(idx[-1]) + 1
    return idx, n_windows


def windowed_request_counts(trace: Trace, window_s: float) -> np.ndarray:
    """Requests per window (length = ceil(duration / window))."""
    idx, n_windows = _window_index(trace, window_s)
    return np.bincount(idx, minlength=n_windows).astype(np.int64)


def index_of_dispersion(trace: Trace, window_s: float) -> float:
    """Variance-to-mean ratio of windowed counts.

    1.0 for a Poisson process; substantially above 1 means bursty — the
    regime where spin-down policies pay transition costs (Sec. 5.2's
    "idle time is not long enough to compensate" effect).  The trailing
    window is dropped when partial (it is systematically under-filled
    and would inflate the variance of any process).
    """
    counts = windowed_request_counts(trace, window_s)
    n_full = int(trace.duration_s // window_s)  # windows fully covered
    if 2 <= n_full < counts.size:
        counts = counts[:n_full]
    require(counts.size >= 2, "need at least 2 full windows for dispersion")
    mean = counts.mean()
    require(mean > 0, "trace has no requests in the analysis horizon")
    return float(counts.var() / mean)


def working_set_sizes(trace: Trace, window_s: float) -> np.ndarray:
    """Distinct files touched per window."""
    idx, n_windows = _window_index(trace, window_s)
    out = np.zeros(n_windows, dtype=np.int64)
    # unique (window, file) pairs, counted per window
    pairs = np.unique(np.stack([idx, trace.file_ids]), axis=1)
    np.add.at(out, pairs[0], 1)
    return out


def popularity_churn(trace: Trace, n_files: int, window_s: float, *,
                     top_k: int = 50) -> tuple[np.ndarray, np.ndarray]:
    """How much the popularity ranking moves between adjacent windows.

    Returns two arrays of length ``n_windows - 1``:

    * Spearman rank correlation of the full per-file count vectors
      (1.0 = static popularity, toward 0 = reshuffled);
    * Jaccard overlap of the top-``top_k`` sets (what a cache or a hot
      zone actually keys on).
    """
    require(n_files >= 1, "n_files must be >= 1")
    require(top_k >= 1, "top_k must be >= 1")
    idx, n_windows = _window_index(trace, window_s)
    require(n_windows >= 2, "need at least 2 windows for churn")
    counts = np.zeros((n_windows, n_files), dtype=np.int64)
    np.add.at(counts, (idx, trace.file_ids), 1)

    spearman = np.empty(n_windows - 1, dtype=np.float64)
    jaccard = np.empty(n_windows - 1, dtype=np.float64)
    k = min(top_k, n_files)
    for w in range(n_windows - 1):
        a, b = counts[w], counts[w + 1]
        if a.sum() == 0 or b.sum() == 0:
            spearman[w] = 0.0
            jaccard[w] = 0.0
            continue
        rho = sstats.spearmanr(a, b).statistic
        spearman[w] = 0.0 if np.isnan(rho) else float(rho)
        jaccard[w] = _topk_jaccard(a, b, k)
    return spearman, jaccard


def _topk_set(counts: np.ndarray, k: int) -> set[int]:
    order = np.argsort(-counts, kind="stable")[:k]
    return {int(f) for f in order if counts[f] > 0}


def _topk_jaccard(a: np.ndarray, b: np.ndarray, k: int) -> float:
    top_a, top_b = _topk_set(a, k), _topk_set(b, k)
    union = top_a | top_b
    return len(top_a & top_b) / len(union) if union else 0.0


@dataclass(frozen=True, slots=True)
class TraceAnalysis:
    """Windowed-analysis summary of one trace."""

    window_s: float
    n_windows: int
    mean_rate_per_s: float
    index_of_dispersion: float
    mean_working_set: float
    max_working_set: int
    mean_rank_correlation: float
    mean_topk_jaccard: float


def analyze_trace(trace: Trace, n_files: int, *, window_s: float = 300.0,
                  top_k: int = 50) -> TraceAnalysis:
    """One-call windowed characterization (used by examples and the CLI)."""
    counts = windowed_request_counts(trace, window_s)
    ws = working_set_sizes(trace, window_s)
    if counts.size >= 2:
        spearman, jaccard = popularity_churn(trace, n_files, window_s, top_k=top_k)
        rho = float(spearman.mean())
        jac = float(jaccard.mean())
        iod = index_of_dispersion(trace, window_s)
    else:
        rho, jac, iod = 1.0, 1.0, 1.0
    return TraceAnalysis(
        window_s=window_s,
        n_windows=int(counts.size),
        mean_rate_per_s=float(counts.sum() / (counts.size * window_s)),
        index_of_dispersion=iod,
        mean_working_set=float(ws.mean()),
        max_working_set=int(ws.max()),
        mean_rank_correlation=rho,
        mean_topk_jaccard=jac,
    )
