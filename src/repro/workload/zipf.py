"""Zipf-like popularity: sampling, measurement, and the paper's skew parameter.

The paper (Sec. 4) assumes web requests follow a Zipf-like law: the
relative probability of a request for the *i*-th most popular file is
proportional to ``1 / i**alpha`` with ``alpha`` in ``[0, 1]``.

It additionally summarizes a workload with a single *skew parameter*

    theta = log(A) / log(B)   (logs "base 100")

"where A percent of all accesses are directed to B percent of files",
and sets the popular-file count to ``|Fp| = (1 - theta) * m``.

Read with A, B as raw percentages that formula yields theta > 1 whenever
A > B (always true for a skewed workload) and hence a *negative* popular
file count — clearly not intended.  Read with A, B as fractions of 1
(equivalently: both logs taken after dividing by 100, which is the only
sense in which "base 100" produces a normalized quantity) it yields
``theta = ln(A/100) / ln(B/100)`` in ``(0, 1]``, with theta == 1 exactly
for a uniform workload (A == B) and theta -> 0 as skew grows.  That is
the reading implemented here; see DESIGN.md "Known internal
inconsistencies", item 3.
"""

from __future__ import annotations

import numpy as np

from repro.util.rngtools import SeedLike, rng_from
from repro.util.validation import require, require_in_range

__all__ = [
    "zipf_probabilities",
    "zipf_cdf",
    "zipf_sample_ranks",
    "measure_access_skew",
    "skew_theta",
    "theta_from_counts",
    "fit_zipf_alpha",
]


def zipf_probabilities(n: int, alpha: float) -> np.ndarray:
    """Probability vector of a Zipf-like law over ranks ``1..n``.

    ``p[i] ∝ 1 / (i+1)**alpha`` (0-indexed array, rank 1 at index 0).
    ``alpha = 0`` is uniform; ``alpha = 1`` is classic Zipf.  Values
    outside ``[0, 1]`` are accepted (the generator is more general than
    the paper needs) but must be finite and non-negative.
    """
    require(n >= 1, f"n must be >= 1, got {n}")
    require_in_range(alpha, 0.0, 10.0, "alpha")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


def zipf_cdf(n_files: int, alpha: float) -> np.ndarray:
    """Cumulative distribution over ranks, ready for inverse-CDF sampling.

    The final entry is clamped to exactly 1.0 to guard against float
    round-off excluding the last rank.  Shared by the one-shot sampler
    below and the chunked sampler in ``repro.workload.stream`` (both
    must search the *same* CDF for their outputs to agree bit-for-bit).
    """
    cdf = np.cumsum(zipf_probabilities(n_files, alpha))
    cdf[-1] = 1.0
    return cdf


def zipf_sample_ranks(n_files: int, alpha: float, n_samples: int,
                      seed: SeedLike = None) -> np.ndarray:
    """Draw ``n_samples`` popularity *ranks* (0-indexed) i.i.d. from a Zipf law.

    Uses inverse-CDF sampling on the exact finite distribution (not the
    unbounded ``numpy.random.zipf``, whose support is infinite and whose
    exponent must exceed 1).  Vectorized: one ``searchsorted`` over all
    samples.
    """
    require(n_samples >= 0, f"n_samples must be >= 0, got {n_samples}")
    cdf = zipf_cdf(n_files, alpha)
    rng = rng_from(seed)
    u = rng.random(n_samples)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)


def measure_access_skew(access_counts: np.ndarray, top_fraction: float = 0.2) -> float:
    """Fraction of accesses that hit the ``top_fraction`` most-accessed files.

    This is the empirical "A" of the paper's A/B rule for B =
    ``top_fraction`` (e.g. ``top_fraction=0.2`` asks the 80/20 question).
    Returns a fraction in [0, 1].  Ties are broken by taking the largest
    counts first, so the result is the maximal such fraction.
    """
    counts = np.asarray(access_counts, dtype=np.float64)
    require(counts.ndim == 1 and counts.size >= 1, "access_counts must be a non-empty 1-D array")
    require(np.all(counts >= 0), "access_counts must be non-negative")
    require_in_range(top_fraction, 0.0, 1.0, "top_fraction")
    total = counts.sum()
    if total == 0:
        return 0.0
    k = max(1, int(round(top_fraction * counts.size)))
    # partial selection of the k largest counts; O(n) vs O(n log n) full sort
    top = np.partition(counts, counts.size - k)[counts.size - k:]
    return float(top.sum() / total)


def skew_theta(accesses_percent: float, files_percent: float) -> float:
    """The paper's skew parameter theta = ln(A/100) / ln(B/100).

    Parameters are percentages: ``accesses_percent`` (A) of all accesses
    go to the ``files_percent`` (B) most popular files.  Returns theta in
    (0, 1]; theta == 1 for a uniform workload (A == B), smaller for more
    skew.  A must be >= B (the top B% of files receive at least their
    proportional share by definition).
    """
    a = require_in_range(accesses_percent, 1e-9, 100.0, "accesses_percent") / 100.0
    b = require_in_range(files_percent, 1e-9, 100.0, "files_percent") / 100.0
    require(a >= b, f"accesses_percent ({accesses_percent}) must be >= files_percent ({files_percent})")
    if a >= 1.0 - 1e-12:
        # log(1) == 0: all accesses in the top B% -> maximal skew
        return 0.0 if b < 1.0 - 1e-12 else 1.0
    return float(np.log(a) / np.log(b))


def theta_from_counts(access_counts: np.ndarray, top_fraction: float = 0.2) -> float:
    """Estimate theta directly from observed access counts.

    Measures A empirically for B = ``top_fraction`` and applies
    :func:`skew_theta`.  This is what READ's epoch re-estimation
    (Fig. 6, line 11 "Re-calculate the skew parameter theta") uses.
    """
    a_fraction = measure_access_skew(access_counts, top_fraction)
    if a_fraction <= 0.0:
        return 1.0  # no accesses observed: treat as uniform (no skew evidence)
    a_pct = max(a_fraction * 100.0, top_fraction * 100.0)  # enforce A >= B
    return skew_theta(a_pct, top_fraction * 100.0)


def fit_zipf_alpha(access_counts: np.ndarray) -> float:
    """Least-squares fit of the Zipf exponent alpha from access counts.

    Sorts counts into rank order and regresses ``log(count)`` on
    ``log(rank)``; the slope's negation is alpha.  Zero counts are
    excluded (log undefined); needs at least two distinct non-zero ranks.
    """
    counts = np.sort(np.asarray(access_counts, dtype=np.float64))[::-1]
    counts = counts[counts > 0]
    require(counts.size >= 2, "need at least two non-zero access counts to fit alpha")
    ranks = np.arange(1, counts.size + 1, dtype=np.float64)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(counts), 1)
    return float(max(0.0, -slope))
