"""Core value types shared by the workload and disk layers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.validation import require_non_negative, require_positive

_INF = math.inf

__all__ = ["FileSpec", "Request"]


@dataclass(frozen=True, slots=True)
class FileSpec:
    """One file in the stored data set.

    The paper models a file ``f_i = (s_i, lambda_i)`` — size and access
    rate (Sec. 4).  The access rate is workload-dependent, so it lives in
    popularity statistics rather than here; the spec itself is immutable.

    Attributes
    ----------
    file_id:
        Dense integer identifier, ``0 <= file_id < len(fileset)``.
    size_mb:
        File size in megabytes.  Each request reads the whole file
        (whole-file access assumption, Sec. 4).
    """

    file_id: int
    size_mb: float

    def __post_init__(self) -> None:
        if self.file_id < 0:
            raise ValueError(f"file_id must be >= 0, got {self.file_id}")
        require_positive(self.size_mb, "size_mb")


@dataclass(slots=True)
class Request:
    """One whole-file read request submitted to the array.

    Lifecycle fields are filled in by the simulator as the request moves
    through a disk queue; ``response_time`` is only valid once
    ``completion_time`` is set.
    """

    arrival_time: float
    file_id: int
    size_mb: float
    #: Disk that ultimately served the request (set by the policy/array).
    served_by: int = field(default=-1)
    #: When the disk began transferring data for this request.
    service_start: float = field(default=-1.0)
    #: When the transfer finished.
    completion_time: float = field(default=-1.0)
    #: Resubmissions after a disk failure (fault injection; 0 otherwise).
    retries: int = field(default=0)

    def __post_init__(self) -> None:
        # constructed once per trace request — validate with plain
        # comparisons (the ``not (...)`` forms also reject NaN)
        if not (0.0 <= self.arrival_time < _INF):
            require_non_negative(self.arrival_time, "arrival_time")
        if self.file_id < 0:
            raise ValueError(f"file_id must be >= 0, got {self.file_id}")
        if not (0.0 < self.size_mb < _INF):
            require_positive(self.size_mb, "size_mb")

    @classmethod
    def from_validated(cls, arrival_time: float, file_id: int, size_mb: float) -> "Request":
        """Fast constructor for already-validated inputs.

        The experiment runner materializes one Request per trace row;
        arrival times come from a validated :class:`~repro.workload.trace.Trace`
        and sizes from a validated :class:`~repro.workload.files.FileSet`,
        so this skips the dataclass init + ``__post_init__`` re-checks.
        """
        req = cls.__new__(cls)
        req.arrival_time = arrival_time
        req.file_id = file_id
        req.size_mb = size_mb
        req.served_by = -1
        req.service_start = -1.0
        req.completion_time = -1.0
        req.retries = 0
        return req

    @property
    def completed(self) -> bool:
        """Whether the simulator has finished serving this request."""
        return self.completion_time >= 0.0

    @property
    def response_time(self) -> float:
        """Completion minus arrival (the paper's per-request metric)."""
        if not self.completed:
            raise ValueError("request has not completed; response_time undefined")
        return self.completion_time - self.arrival_time

    @property
    def waiting_time(self) -> float:
        """Queueing delay before service began."""
        if self.service_start < 0:
            raise ValueError("request has not started service; waiting_time undefined")
        return self.service_start - self.arrival_time
