"""Content-keyed memoization of synthetic workload generation.

Sweeps evaluate many (policy, array size) cells against the *same*
workload — the paper's fairness protocol (Sec. 3.5) even requires it —
yet each cell historically regenerated the trace from scratch.  This
module keys a generated ``(FileSet, Trace)`` pair by a digest of the
full :class:`~repro.workload.synthetic.SyntheticWorkloadConfig` content,
so any two configs with equal parameters share one materialization:

* an in-process LRU holds the most recent ``max_entries`` workloads
  (both arrays are immutable — ``setflags(write=False)`` — so sharing
  one instance across simulation runs is safe);
* optionally, a directory of ``.npz`` files persists workloads across
  processes; point ``REPRO_WORKLOAD_CACHE`` at a directory (or pass
  ``disk_dir``) to enable it.  Writes are atomic (tmp file + rename) so
  concurrent sweep workers can share one store.

The digest covers every config field, including ``size_kwargs``, so a
changed parameter can never alias a stale workload.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import zipfile
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.util.atomicio import atomic_write_bytes, quarantine
from repro.util.validation import require
from repro.workload.files import FileSet
from repro.workload.stream import (SyntheticStreamSpec, WC98StreamSpec,
                                   WorkloadLike, materialize)
from repro.workload.synthetic import SyntheticWorkloadConfig, WorldCupLikeWorkload
from repro.workload.trace import Trace

__all__ = ["WorkloadCache", "cached_generate", "default_cache", "workload_key"]

#: Environment variable naming the on-disk store directory (optional).
CACHE_DIR_ENV = "REPRO_WORKLOAD_CACHE"

#: Default number of workloads kept in memory.  Workloads at paper scale
#: are tens of MB; sweeps touch one or two distinct configs at a time.
DEFAULT_MAX_ENTRIES = 8


def workload_key(config: WorkloadLike) -> str:
    """Stable content digest of a workload description (sha256 hex).

    Equal parameter values — not object identity — produce equal keys.
    Stream specs digest their *canonical* content: a
    :class:`SyntheticStreamSpec` keys identically to its underlying
    config (streamed and materialized generation are bit-identical, so
    they must share one cache entry), and no spec's key ever depends on
    a chunk size — chunking changes iteration granularity, never the
    produced trace.
    """
    if isinstance(config, SyntheticStreamSpec):
        config = config.config
    if isinstance(config, WC98StreamSpec):
        payload: dict = {"kind": "wc98", "path": config.path,
                         "methods": list(config.methods),
                         "min_size_bytes": config.min_size_bytes}
    else:
        payload = asdict(config)
        # dicts compare by content but iterate in insertion order; normalize
        payload["size_kwargs"] = sorted(payload["size_kwargs"].items())
    blob = json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class WorkloadCache:
    """LRU of generated workloads with an optional on-disk ``.npz`` store."""

    def __init__(self, *, max_entries: int = DEFAULT_MAX_ENTRIES,
                 disk_dir: str | os.PathLike | None = None) -> None:
        require(max_entries >= 1, f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._dir: Optional[Path] = Path(disk_dir) if disk_dir is not None else None
        self._lru: "OrderedDict[str, Tuple[FileSet, Trace]]" = OrderedDict()
        self.hits = 0        #: in-memory hits
        self.disk_hits = 0   #: misses served from the on-disk store
        self.misses = 0      #: full regenerations
        self.quarantined = 0  #: corrupt entries renamed aside (.corrupt)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._lru)

    @property
    def disk_dir(self) -> Optional[Path]:
        """On-disk store location (``None`` when memory-only)."""
        return self._dir

    def clear(self) -> None:
        """Drop all in-memory entries (the disk store is left alone)."""
        self._lru.clear()

    # ------------------------------------------------------------------
    def get_or_generate(self, config: WorkloadLike) -> Tuple[FileSet, Trace]:
        """Return the workload for ``config``, generating at most once.

        Accepts stream specs as well as plain configs: the key is the
        canonical content digest, so a spec's entry is shared with (and
        bit-identical to) the materialized form's.
        """
        key = workload_key(config)
        pair = self._lru.get(key)
        if pair is not None:
            self.hits += 1
            self._lru.move_to_end(key)
            return pair
        if self._dir is not None:
            pair = self._disk_load(key)
            if pair is not None:
                self.disk_hits += 1
                self._remember(key, pair)
                return pair
        self.misses += 1
        if isinstance(config, (SyntheticStreamSpec, WC98StreamSpec)):
            pair = materialize(config)
        else:
            pair = WorldCupLikeWorkload(config).generate()
        self._remember(key, pair)
        if self._dir is not None:
            self._disk_save(key, pair)
        return pair

    def _remember(self, key: str, pair: Tuple[FileSet, Trace]) -> None:
        self._lru[key] = pair
        self._lru.move_to_end(key)
        while len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)

    # ------------------------------------------------------------------
    # on-disk store
    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        assert self._dir is not None
        return self._dir / f"workload-{key}.npz"

    def _disk_load(self, key: str) -> Optional[Tuple[FileSet, Trace]]:
        """Load one entry; a damaged file is quarantined, never fatal.

        A truncated or corrupt ``.npz`` (a process killed mid-write by a
        pre-atomic build, bit rot, a torn copy) raises anything from
        :class:`zipfile.BadZipFile` through :class:`EOFError` to
        :class:`pickle.UnpicklingError` depending on where the damage
        sits.  All of them are treated the same way: rename the file
        aside as ``<name>.corrupt`` so every subsequent run regenerates
        cleanly instead of tripping over the same corpse, and fall
        through to regeneration now.
        """
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                fileset = FileSet(data["sizes_mb"])
                trace = Trace(data["times_s"], data["file_ids"])
        except (OSError, KeyError, ValueError, EOFError,
                zipfile.BadZipFile, pickle.UnpicklingError):
            if quarantine(path) is not None:
                self.quarantined += 1
            return None  # corrupt entry -> regenerate
        return fileset, trace

    def _disk_save(self, key: str, pair: Tuple[FileSet, Trace]) -> None:
        assert self._dir is not None
        fileset, trace = pair
        buf = io.BytesIO()
        np.savez(buf, sizes_mb=fileset.sizes_mb,  # repro: allow[IO001] in-memory buffer; published via atomic_write_bytes below
                 times_s=trace.times_s, file_ids=trace.file_ids)
        try:
            # atomic publish: concurrent workers may race on the same key,
            # and a killed process must never leave a half-written file
            atomic_write_bytes(self._path(key), buf.getvalue())
        except OSError:
            pass  # a read-only or full store must never fail the run


# ----------------------------------------------------------------------
# process-wide default
# ----------------------------------------------------------------------
_default: Optional[WorkloadCache] = None


def default_cache() -> WorkloadCache:
    """The process-wide cache, honoring ``REPRO_WORKLOAD_CACHE``."""
    global _default
    if _default is None:
        _default = WorkloadCache(disk_dir=os.environ.get(CACHE_DIR_ENV) or None)
    return _default


def cached_generate(config: WorkloadLike) -> Tuple[FileSet, Trace]:
    """Generate (or reuse) the workload for ``config`` via the default cache."""
    return default_cache().get_or_generate(config)
