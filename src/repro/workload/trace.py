"""Trace container, statistics, and portable CSV persistence.

A :class:`Trace` is the simulator's sole workload input: parallel numpy
arrays of arrival times (seconds, sorted) and file ids.  It is what both
the synthetic generator and the WC98 reader produce, so every experiment
is agnostic to where its workload came from.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from repro.util.atomicio import atomic_write_text
from repro.util.validation import require
from repro.workload.files import FileSet
from repro.workload.request import Request
from repro.workload.zipf import fit_zipf_alpha, measure_access_skew, theta_from_counts

__all__ = ["Trace", "TraceStats"]


@dataclass(frozen=True, slots=True)
class TraceStats:
    """Summary statistics of a trace (the quantities the paper reports)."""

    n_requests: int
    n_files_referenced: int
    duration_s: float
    mean_interarrival_s: float
    #: Empirical fraction of accesses hitting the top 20% of files.
    top20_access_fraction: float
    #: The paper's skew parameter theta measured at B = 20%.
    theta: float
    #: Least-squares Zipf exponent of the observed popularity ranking.
    zipf_alpha: float


class Trace:
    """An ordered sequence of whole-file read requests.

    Parameters
    ----------
    times_s:
        Arrival times in seconds, non-decreasing, all >= 0.
    file_ids:
        File id per request; must index into the eventual
        :class:`~repro.workload.files.FileSet`.
    """

    def __init__(self, times_s: np.ndarray, file_ids: np.ndarray) -> None:
        times = np.asarray(times_s, dtype=np.float64)
        ids = np.asarray(file_ids, dtype=np.int64)
        require(times.ndim == 1 and ids.ndim == 1, "trace arrays must be 1-D")
        require(times.size == ids.size, "times and file_ids must have equal length")
        if times.size:
            require(bool(np.all(np.isfinite(times))), "arrival times must be finite")
            require(float(times[0]) >= 0.0, "arrival times must be >= 0")
            require(bool(np.all(np.diff(times) >= 0.0)), "arrival times must be sorted")
            require(bool(np.all(ids >= 0)), "file ids must be >= 0")
        self._times = times.copy()
        self._ids = ids.copy()
        self._times.setflags(write=False)
        self._ids.setflags(write=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._times.size)

    @property
    def times_s(self) -> np.ndarray:
        """Read-only arrival times (seconds)."""
        return self._times

    @property
    def file_ids(self) -> np.ndarray:
        """Read-only per-request file ids."""
        return self._ids

    @property
    def duration_s(self) -> float:
        """Time of the last arrival (0 for an empty trace)."""
        return float(self._times[-1]) if len(self) else 0.0

    def requests(self, fileset: FileSet) -> Iterator[Request]:
        """Yield materialized :class:`Request` objects (sizes from ``fileset``)."""
        sizes = fileset.sizes_mb
        for t, fid in zip(self._times, self._ids):
            yield Request(arrival_time=float(t), file_id=int(fid), size_mb=float(sizes[fid]))

    def access_counts(self, n_files: int) -> np.ndarray:
        """Per-file access counts over the whole trace (length ``n_files``)."""
        require(n_files >= 1, f"n_files must be >= 1, got {n_files}")
        if len(self):
            require(int(self._ids.max()) < n_files,
                    "trace references file ids beyond n_files")
        return np.bincount(self._ids, minlength=n_files).astype(np.int64)

    # ------------------------------------------------------------------
    def stats(self, n_files: int | None = None) -> TraceStats:
        """Compute :class:`TraceStats`; ``n_files`` defaults to max id + 1."""
        require(len(self) >= 2, "need at least 2 requests for trace statistics")
        if n_files is None:
            n_files = int(self._ids.max()) + 1
        counts = self.access_counts(n_files)
        nonzero = counts[counts > 0]
        gaps = np.diff(self._times)
        alpha = fit_zipf_alpha(counts) if nonzero.size >= 2 else 0.0
        return TraceStats(
            n_requests=len(self),
            n_files_referenced=int(nonzero.size),
            duration_s=self.duration_s,
            mean_interarrival_s=float(gaps.mean()),
            top20_access_fraction=measure_access_skew(counts, 0.2),
            theta=theta_from_counts(counts, 0.2),
            zipf_alpha=alpha,
        )

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def time_scaled(self, factor: float) -> "Trace":
        """Return a copy with all arrival times multiplied by ``factor``.

        ``factor < 1`` compresses the trace — this is exactly how the
        paper constructs its "heavy workload condition" from the same
        request stream.
        """
        require(factor > 0, f"factor must be > 0, got {factor}")
        return Trace(self._times * factor, self._ids)

    def head(self, n: int) -> "Trace":
        """Return the first ``n`` requests as a new trace."""
        require(n >= 0, f"n must be >= 0, got {n}")
        return Trace(self._times[:n], self._ids[:n])

    def window(self, start_s: float, end_s: float) -> "Trace":
        """Requests with arrival in ``[start_s, end_s)``, times re-based to 0."""
        require(end_s >= start_s, "end_s must be >= start_s")
        mask = (self._times >= start_s) & (self._times < end_s)
        return Trace(self._times[mask] - start_s, self._ids[mask])

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_csv(self, path: Union[str, Path]) -> None:
        """Write ``time_s,file_id`` rows with a one-line header.

        Published atomically (:mod:`repro.util.atomicio`): a killed
        process never leaves a torn trace where a reader expects one.
        """
        buf = io.StringIO()
        buf.write("time_s,file_id\n")
        np.savetxt(buf,  # repro: allow[IO001] in-memory buffer; published atomically below
                   np.column_stack([self._times, self._ids.astype(np.float64)]),
                   fmt=["%.9f", "%d"], delimiter=",")
        atomic_write_text(path, buf.getvalue())

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace written by :meth:`to_csv`."""
        data = np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
        if data.size == 0:
            return cls(np.empty(0), np.empty(0, dtype=np.int64))
        return cls(data[:, 0], data[:, 1].astype(np.int64))
