"""File populations and web-realistic size distributions.

The WorldCup98 day the paper replays holds 4 079 distinct files with
small average size ("average file sizes in the real web workload are
much smaller than a normal stripping block size 512 KB", Sec. 4).  Web
object sizes are classically modeled as lognormal body + Pareto tail
(Crovella & Bestavros); both pieces are provided and the synthetic
generator combines them.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.util.rngtools import SeedLike, rng_from
from repro.util.validation import require, require_positive
from repro.workload.request import FileSpec

__all__ = ["FileSet", "lognormal_web_sizes", "pareto_web_sizes", "hybrid_web_sizes"]


def lognormal_web_sizes(n: int, median_kb: float = 6.0, sigma: float = 1.3,
                        seed: SeedLike = None) -> np.ndarray:
    """Lognormal web object sizes, returned in **MB**.

    Defaults give a median of ~6 KB, typical of 1998-era static web
    content (the WC98 trace is dominated by small GIFs and HTML).
    """
    require(n >= 0, f"n must be >= 0, got {n}")
    require_positive(median_kb, "median_kb")
    require_positive(sigma, "sigma")
    rng = rng_from(seed)
    sizes_kb = rng.lognormal(mean=np.log(median_kb), sigma=sigma, size=n)
    return sizes_kb / 1024.0


def pareto_web_sizes(n: int, tail_alpha: float = 1.2, min_kb: float = 30.0,
                     seed: SeedLike = None) -> np.ndarray:
    """Pareto-tailed large-object sizes, returned in **MB**.

    Models the heavy tail (images, archives, media) that a pure lognormal
    underestimates.  ``tail_alpha`` just above 1 gives the infinite-variance
    tail reported for web traffic.
    """
    require(n >= 0, f"n must be >= 0, got {n}")
    require_positive(tail_alpha, "tail_alpha")
    require_positive(min_kb, "min_kb")
    rng = rng_from(seed)
    sizes_kb = min_kb * (1.0 + rng.pareto(tail_alpha, size=n))
    return sizes_kb / 1024.0


def hybrid_web_sizes(n: int, tail_fraction: float = 0.05, seed: SeedLike = None,
                     **kwargs: float) -> np.ndarray:
    """Lognormal body with a Pareto tail mixed in, returned in **MB**.

    ``tail_fraction`` of the files are drawn from the Pareto tail.  Extra
    keyword arguments are routed by prefix: ``median_kb``/``sigma`` to the
    lognormal body, ``tail_alpha``/``min_kb`` to the Pareto tail.
    """
    require(n >= 0, f"n must be >= 0, got {n}")
    require(0.0 <= tail_fraction <= 1.0, f"tail_fraction must be in [0,1], got {tail_fraction}")
    rng = rng_from(seed)
    body_kw = {k: v for k, v in kwargs.items() if k in ("median_kb", "sigma")}
    tail_kw = {k: v for k, v in kwargs.items() if k in ("tail_alpha", "min_kb")}
    unknown = set(kwargs) - set(body_kw) - set(tail_kw)
    require(not unknown, f"unknown size-model parameters: {sorted(unknown)}")
    sizes = lognormal_web_sizes(n, seed=rng, **body_kw)
    n_tail = int(round(tail_fraction * n))
    if n_tail > 0:
        tail_idx = rng.choice(n, size=n_tail, replace=False)
        sizes[tail_idx] = pareto_web_sizes(n_tail, seed=rng, **tail_kw)
    return sizes


class FileSet:
    """An immutable collection of :class:`FileSpec`, indexed by dense id.

    Sizes are held in a single numpy array so the simulator's hot path
    (service-time computation) is a vectorizable array lookup rather than
    attribute access on millions of objects.
    """

    def __init__(self, sizes_mb: Sequence[float] | np.ndarray) -> None:
        arr = np.asarray(sizes_mb, dtype=np.float64)
        require(arr.ndim == 1, "sizes_mb must be 1-D")
        require(arr.size >= 1, "a FileSet must contain at least one file")
        require(bool(np.all(np.isfinite(arr)) and np.all(arr > 0)),
                "all file sizes must be finite and > 0")
        self._sizes = arr.copy()
        self._sizes.setflags(write=False)
        self._total_mb = float(self._sizes.sum())

    # ------------------------------------------------------------------
    @classmethod
    def web_like(cls, n_files: int, seed: SeedLike = None, **size_kwargs: float) -> "FileSet":
        """Build a web-realistic file set (lognormal body + Pareto tail)."""
        return cls(hybrid_web_sizes(n_files, seed=seed, **size_kwargs))

    @classmethod
    def uniform(cls, n_files: int, size_mb: float) -> "FileSet":
        """Build a file set where every file has the same size."""
        require_positive(size_mb, "size_mb")
        return cls(np.full(n_files, size_mb, dtype=np.float64))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._sizes.size)

    def __iter__(self) -> Iterator[FileSpec]:
        for i in range(len(self)):
            yield FileSpec(i, float(self._sizes[i]))

    def __getitem__(self, file_id: int) -> FileSpec:
        return FileSpec(int(file_id), float(self._sizes[file_id]))

    @property
    def sizes_mb(self) -> np.ndarray:
        """Read-only array of file sizes in MB, indexed by file id."""
        return self._sizes

    def size_of(self, file_id: int) -> float:
        """Size in MB of one file."""
        return float(self._sizes[file_id])

    @property
    def total_mb(self) -> float:
        """Total stored bytes across all files, in MB."""
        return self._total_mb

    @property
    def mean_mb(self) -> float:
        """Mean file size in MB."""
        return float(self._sizes.mean())

    def ids_sorted_by_size(self, descending: bool = False) -> np.ndarray:
        """File ids sorted by size (stable).

        READ's original placement round sorts files by size,
        non-decreasing, under the assumption that popularity is inversely
        correlated with size (Sec. 4).
        """
        order = np.argsort(self._sizes, kind="stable")
        return order[::-1] if descending else order
