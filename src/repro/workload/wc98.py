"""Reader/writer for the WorldCup98 binary access-log format.

The 1998 World Cup web trace (Arlitt & Jin, reference [2] of the paper)
is distributed as a sequence of fixed-size 20-byte binary records, each
field big-endian ("network byte order" per the trace's README):

===========  ======  ========================================
field        bytes   meaning
===========  ======  ========================================
timestamp    4       seconds since epoch of the request
clientID     4       anonymized client identifier
objectID     4       unique id of the requested URL
size         4       bytes in the response
method       1       HTTP method code (GET = 0)
status       1       HTTP protocol/status code byte
type         1       file-type code (HTML = 0, IMAGE = 1, ...)
server       1       site/region/server id byte
===========  ======  ========================================

This module parses that exact layout so the *real* trace can be dropped
into any experiment in place of the synthetic workload — the substitution
documented in DESIGN.md runs in reverse for anyone who has the file.
Object ids are remapped to a dense 0..n-1 range and per-object sizes are
taken from the largest response observed for that object (responses can
be truncated/partial, so the max is the best whole-file size estimate).
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, Union

import numpy as np

from repro.util.atomicio import atomic_write_bytes
from repro.util.validation import require
from repro.workload.files import FileSet
from repro.workload.trace import Trace

__all__ = ["TraceFormatError", "WC98Record", "read_wc98", "write_wc98",
           "wc98_to_trace", "iter_wc98_chunks", "RECORD_SIZE",
           "RECORD_DTYPE", "DEFAULT_RECORDS_PER_CHUNK"]

#: struct layout: big-endian, 4 uint32 + 4 uint8 = 20 bytes.
_RECORD_STRUCT = struct.Struct(">IIIIBBBB")
RECORD_SIZE = _RECORD_STRUCT.size
assert RECORD_SIZE == 20

#: The same wire layout as a numpy structured dtype (big-endian fields),
#: so whole chunks decode with one ``np.frombuffer`` instead of a
#: per-record ``struct.unpack`` loop.
RECORD_DTYPE = np.dtype([("timestamp", ">u4"), ("client_id", ">u4"),
                         ("object_id", ">u4"), ("size", ">u4"),
                         ("method", "u1"), ("status", "u1"),
                         ("type", "u1"), ("server", "u1")])
assert RECORD_DTYPE.itemsize == RECORD_SIZE

#: Records decoded per chunk by :func:`iter_wc98_chunks` (~1.3 MB of
#: wire bytes) — large enough that numpy decode dominates, small enough
#: that streaming stays constant-memory.
DEFAULT_RECORDS_PER_CHUNK = 65_536

#: Method code for GET in the WC98 tools distribution.
METHOD_GET = 0


class TraceFormatError(ValueError):
    """A binary trace file does not conform to the WC98 wire format.

    Raised (rather than silently mis-parsing or swallowing the tail)
    when the byte stream ends mid-record — the classic symptom of an
    interrupted download or a log truncated by disk-full.  Carries the
    location so the offending file can be inspected/repaired:

    Attributes
    ----------
    record_index:
        Index of the record that could not be decoded (0-based; equals
        the number of records decoded successfully).
    byte_offset:
        File offset at which that record starts.
    got_bytes:
        How many bytes of the partial record were present.
    """

    def __init__(self, record_index: int, byte_offset: int, got_bytes: int) -> None:
        super().__init__(
            f"truncated WC98 record #{record_index} at byte {byte_offset}: "
            f"got {got_bytes} trailing byte(s), expected {RECORD_SIZE}")
        self.record_index = record_index
        self.byte_offset = byte_offset
        self.got_bytes = got_bytes


@dataclass(frozen=True, slots=True)
class WC98Record:
    """One decoded access-log record (field semantics in the module docstring)."""

    timestamp: int
    client_id: int
    object_id: int
    size: int
    method: int
    status: int
    type: int
    server: int

    def pack(self) -> bytes:
        """Encode back to the 20-byte wire format."""
        return _RECORD_STRUCT.pack(self.timestamp, self.client_id, self.object_id,
                                    self.size, self.method, self.status, self.type,
                                    self.server)


def _iter_records(fh: BinaryIO) -> Iterator[WC98Record]:
    index = 0
    offset = 0
    while True:
        chunk = fh.read(RECORD_SIZE)
        if not chunk:
            return
        if len(chunk) != RECORD_SIZE:
            # short reads mid-stream (pipes, sockets) are legal — keep
            # reading until the record completes or the stream truly
            # ends; only a short record *at EOF* is corruption
            while len(chunk) < RECORD_SIZE:
                rest = fh.read(RECORD_SIZE - len(chunk))
                if not rest:
                    raise TraceFormatError(index, offset, len(chunk))
                chunk += rest
        yield WC98Record(*_RECORD_STRUCT.unpack(chunk))
        index += 1
        offset += RECORD_SIZE


def _iter_chunks_fh(fh: BinaryIO, records_per_chunk: int) -> Iterator[np.ndarray]:
    index = 0
    offset = 0
    want = records_per_chunk * RECORD_SIZE
    while True:
        data = fh.read(want)
        if not data:
            return
        # short reads mid-stream (pipes, sockets) are legal — top the
        # buffer up until the chunk completes or the stream truly ends
        while len(data) < want:
            rest = fh.read(want - len(data))
            if not rest:
                break
            data += rest
        extra = len(data) % RECORD_SIZE
        if extra:
            # only reachable at EOF (a full chunk is a whole number of
            # records): the file ends mid-record — corruption, located
            n_complete = len(data) // RECORD_SIZE
            raise TraceFormatError(index + n_complete,
                                   offset + n_complete * RECORD_SIZE, extra)
        arr = np.frombuffer(data, dtype=RECORD_DTYPE)
        yield arr
        index += arr.size
        offset += arr.size * RECORD_SIZE
        if len(data) < want:
            return  # EOF landed exactly on a record boundary


def iter_wc98_chunks(path_or_file: Union[str, Path, BinaryIO], *,
                     records_per_chunk: int = DEFAULT_RECORDS_PER_CHUNK,
                     ) -> Iterator[np.ndarray]:
    """Decode a WC98 binary log chunk-at-a-time into structured arrays.

    Yields read-only :data:`RECORD_DTYPE` arrays of up to
    ``records_per_chunk`` records each; the concatenation over all chunks
    equals :func:`read_wc98` field-for-field while holding only one chunk
    in memory.  A file that ends mid-record raises
    :class:`TraceFormatError` carrying the record index and byte offset
    of the partial record, exactly like the scalar reader.
    """
    require(records_per_chunk >= 1,
            f"records_per_chunk must be >= 1, got {records_per_chunk}")
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "rb") as fh:
            yield from _iter_chunks_fh(fh, records_per_chunk)
        return
    yield from _iter_chunks_fh(path_or_file, records_per_chunk)


def read_wc98(path_or_file: Union[str, Path, BinaryIO], *,
              max_records: int | None = None) -> list[WC98Record]:
    """Decode a WC98 binary log into records (optionally capped)."""
    if max_records is not None:
        require(max_records >= 0, f"max_records must be >= 0, got {max_records}")

    def _read(fh: BinaryIO) -> list[WC98Record]:
        out: list[WC98Record] = []
        for rec in _iter_records(fh):
            out.append(rec)
            if max_records is not None and len(out) >= max_records:
                break
        return out

    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "rb") as fh:
            return _read(fh)
    return _read(path_or_file)


def write_wc98(records: Iterable[WC98Record],
               path_or_file: Union[str, Path, BinaryIO]) -> int:
    """Encode records to the binary format; returns the record count."""
    def _write(fh: BinaryIO) -> int:
        n = 0
        for rec in records:
            fh.write(rec.pack())
            n += 1
        return n

    if isinstance(path_or_file, (str, Path)):
        buf = io.BytesIO()
        count = _write(buf)
        atomic_write_bytes(path_or_file, buf.getvalue())
        return count
    return _write(path_or_file)


def wc98_to_trace(records: list[WC98Record], *,
                  methods: tuple[int, ...] = (METHOD_GET,),
                  min_size_bytes: int = 1) -> tuple[FileSet, Trace]:
    """Convert decoded records to the simulator's (FileSet, Trace) inputs.

    * keeps only the given HTTP methods (GET by default) and responses of
      at least ``min_size_bytes`` (zero-byte responses carry no disk work);
    * re-bases timestamps so the trace starts at t = 0 (second resolution
      in the wire format; sub-second jitter is *not* invented here — feed
      the result through :meth:`Trace.time_scaled` or re-sample arrivals
      if finer spacing is required);
    * remaps object ids densely and sizes each file as the maximum
      response size observed for it.
    """
    require(len(records) > 0, "no records to convert")
    kept = [r for r in records
            if r.method in methods and r.size >= min_size_bytes]
    require(len(kept) > 0, "no records survive filtering")

    kept.sort(key=lambda r: r.timestamp)
    t0 = kept[0].timestamp
    raw_ids = np.array([r.object_id for r in kept], dtype=np.int64)
    times = np.array([r.timestamp - t0 for r in kept], dtype=np.float64)
    sizes = np.array([r.size for r in kept], dtype=np.float64)

    unique_ids, dense = np.unique(raw_ids, return_inverse=True)
    file_sizes_mb = np.zeros(unique_ids.size, dtype=np.float64)
    np.maximum.at(file_sizes_mb, dense, sizes)
    file_sizes_mb /= 1.0e6  # bytes -> MB, datasheet convention

    return FileSet(file_sizes_mb), Trace(times, dense)
