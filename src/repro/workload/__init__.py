"""Workload substrate: files, popularity, arrivals, traces.

The paper evaluates READ/MAID/PDC with a trace-driven simulation over the
WorldCup98 web trace (Sec. 5.1).  This package provides everything needed
to either *replay* that trace (a reader for the real WC98 binary record
format, :mod:`repro.workload.wc98`) or *synthesize* a statistically
equivalent one (:mod:`repro.workload.synthetic`): Zipf-like popularity
with tunable skew, heavy-tailed web file sizes, and Poisson or bursty
arrival processes.

All downstream consumers see only :class:`~repro.workload.trace.Trace`
(arrival times + file ids) plus a :class:`~repro.workload.files.FileSet`
(sizes), which is exactly the information the paper's algorithms use.
"""

from repro.workload.request import FileSpec, Request
from repro.workload.files import FileSet, lognormal_web_sizes, pareto_web_sizes
from repro.workload.zipf import (
    zipf_probabilities,
    zipf_sample_ranks,
    measure_access_skew,
    skew_theta,
    fit_zipf_alpha,
)
from repro.workload.arrival import (
    poisson_arrivals,
    uniform_arrivals,
    onoff_bursty_arrivals,
    diurnal_poisson_arrivals,
)
from repro.workload.trace import Trace, TraceStats
from repro.workload.synthetic import SyntheticWorkloadConfig, WorldCupLikeWorkload
from repro.workload.cache import (
    WorkloadCache,
    cached_generate,
    default_cache,
    workload_key,
)
from repro.workload.wc98 import WC98Record, read_wc98, write_wc98, wc98_to_trace
from repro.workload.analysis import (
    TraceAnalysis,
    analyze_trace,
    index_of_dispersion,
    popularity_churn,
    windowed_request_counts,
    working_set_sizes,
)

__all__ = [
    "FileSpec",
    "Request",
    "FileSet",
    "lognormal_web_sizes",
    "pareto_web_sizes",
    "zipf_probabilities",
    "zipf_sample_ranks",
    "measure_access_skew",
    "skew_theta",
    "fit_zipf_alpha",
    "poisson_arrivals",
    "uniform_arrivals",
    "onoff_bursty_arrivals",
    "diurnal_poisson_arrivals",
    "Trace",
    "TraceStats",
    "SyntheticWorkloadConfig",
    "WorldCupLikeWorkload",
    "WorkloadCache",
    "cached_generate",
    "default_cache",
    "workload_key",
    "WC98Record",
    "read_wc98",
    "write_wc98",
    "wc98_to_trace",
    "TraceAnalysis",
    "analyze_trace",
    "index_of_dispersion",
    "popularity_churn",
    "windowed_request_counts",
    "working_set_sizes",
]
