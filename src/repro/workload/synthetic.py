"""Synthetic WorldCup98-like workload generator.

The real trace the paper uses (WorldCup98 day 05-09: 4 079 files,
1 480 081 requests, 58.4 ms mean inter-arrival) is not redistributable
here, so this module synthesizes a workload matching the statistics the
paper itself uses to characterize it:

* Zipf-like popularity with exponent ``alpha`` in [0, 1] (Sec. 4);
* popularity inversely correlated with file size (READ's stated
  assumption for its first placement round);
* Poisson arrivals with a configurable mean inter-arrival (58.4 ms for
  the paper's light condition; the heavy condition time-compresses it).

See DESIGN.md "Substitutions" for why this preserves the evaluated
behaviour: the three policies consume only (arrival time, file id, size).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.util.rngtools import SeedLike, rng_from
from repro.util.validation import require, require_in_range, require_positive
from repro.workload.arrival import onoff_bursty_arrivals, poisson_arrivals
from repro.workload.files import FileSet
from repro.workload.trace import Trace
from repro.workload.zipf import zipf_sample_ranks

__all__ = ["SyntheticWorkloadConfig", "WorldCupLikeWorkload"]

#: Mean inter-arrival of the paper's trace day (Sec. 5.1), seconds.
WORLDCUP_MEAN_INTERARRIVAL_S = 0.0584
#: Distinct files in the paper's trace day (Sec. 5.1).
WORLDCUP_N_FILES = 4079


@dataclass(frozen=True, slots=True)
class SyntheticWorkloadConfig:
    """Parameters of a synthetic WC98-like workload.

    Attributes
    ----------
    n_files / n_requests:
        Population and trace length.  Defaults are the paper's file count
        and a trace long enough for stable statistics at laptop scale
        (the full 1.48 M requests are a flag away).
    zipf_alpha:
        Popularity skew in [0, 1] (Sec. 4: "α typically varying between
        0 and 1").
    mean_interarrival_s:
        Poisson mean gap; 0.0584 s reproduces the paper's light load.
    size_popularity_correlation:
        1.0 ranks popularity exactly inverse to size (paper assumption);
        0.0 shuffles popularity independently of size; intermediate
        values blend the two rankings (noisy real-world correlation).
    popularity_drift / drift_segments:
        Temporal popularity churn: the trace is split into
        ``drift_segments`` equal-length phases and between consecutive
        phases a ``popularity_drift`` fraction of the popularity ranks
        are re-dealt to different files.  Real web traces (WC98
        included) shift which objects are hot over the day; a static
        mapping would let reorganizing policies converge once and then
        idle, hiding exactly the churn the paper's evaluation exercises.
        The Zipf *marginal* distribution is unchanged — only the
        rank -> file identity moves.
    bursty:
        Use the ON/OFF bursty arrival process instead of plain Poisson.
    """

    n_files: int = WORLDCUP_N_FILES
    n_requests: int = 200_000
    zipf_alpha: float = 0.8
    mean_interarrival_s: float = WORLDCUP_MEAN_INTERARRIVAL_S
    size_popularity_correlation: float = 1.0
    popularity_drift: float = 0.2
    drift_segments: int = 8
    bursty: bool = False
    seed: int = 0
    size_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        require(self.n_files >= 1, f"n_files must be >= 1, got {self.n_files}")
        require(self.n_requests >= 0, f"n_requests must be >= 0, got {self.n_requests}")
        require_in_range(self.zipf_alpha, 0.0, 1.0, "zipf_alpha")
        require_positive(self.mean_interarrival_s, "mean_interarrival_s")
        require_in_range(self.size_popularity_correlation, 0.0, 1.0,
                         "size_popularity_correlation")
        require_in_range(self.popularity_drift, 0.0, 1.0, "popularity_drift")
        require(self.drift_segments >= 1,
                f"drift_segments must be >= 1, got {self.drift_segments}")

    def heavy(self, intensity: float = 8.0) -> "SyntheticWorkloadConfig":
        """The paper's heavy-load condition: ``intensity`` times the
        arrival rate over the *same* simulated horizon.

        Scaling the request count along with the rate keeps the trace
        duration constant, so epoch-based policies face the same number
        of reorganization opportunities under both conditions.
        """
        require_positive(intensity, "intensity")
        return replace(self,
                       mean_interarrival_s=self.mean_interarrival_s / intensity,
                       n_requests=int(round(self.n_requests * intensity)))


class WorldCupLikeWorkload:
    """Generates a (FileSet, Trace) pair from a :class:`SyntheticWorkloadConfig`.

    Generation is deterministic in ``config.seed``; the same config always
    produces bit-identical traces, which is what lets every policy be
    evaluated against the *same* request stream (the paper's fairness
    requirement, Sec. 3.5).
    """

    def __init__(self, config: SyntheticWorkloadConfig | None = None) -> None:
        self.config = config or SyntheticWorkloadConfig()

    # ------------------------------------------------------------------
    def build_fileset(self) -> FileSet:
        """Create the file population (sizes only; ids are dense ranks)."""
        cfg = self.config
        rng = rng_from(cfg.seed)
        return FileSet.web_like(cfg.n_files, seed=rng, **cfg.size_kwargs)

    def popularity_order(self, fileset: FileSet, seed: SeedLike = None) -> np.ndarray:
        """Map popularity rank -> file id.

        Rank 0 is the most popular file.  With full correlation the
        smallest file is rank 0 (paper assumption); with zero correlation
        the mapping is a uniform permutation; in between, each file's
        rank score blends its size rank with uniform noise.
        """
        cfg = self.config
        rng = rng_from(cfg.seed + 1 if seed is None else seed)
        n = len(fileset)
        size_rank = np.empty(n, dtype=np.float64)
        size_rank[fileset.ids_sorted_by_size()] = np.arange(n, dtype=np.float64)
        noise_rank = rng.permutation(n).astype(np.float64)
        w = cfg.size_popularity_correlation
        score = w * size_rank + (1.0 - w) * noise_rank
        return np.argsort(score, kind="stable").astype(np.int64)

    def drifted_orders(self, fileset: FileSet) -> list[np.ndarray]:
        """One rank -> file mapping per trace segment (see config docs).

        Segment 0 is the base :meth:`popularity_order`; each subsequent
        segment re-deals ``popularity_drift * n`` randomly chosen rank
        slots among themselves (a derangement-style rotation), so hot
        ranks land on previously-cold files while the Zipf marginal is
        preserved.
        """
        cfg = self.config
        rng = rng_from(cfg.seed + 3)
        order = self.popularity_order(fileset)
        orders = [order]
        n = len(fileset)
        n_moved = int(round(cfg.popularity_drift * n))
        for _seg in range(1, cfg.drift_segments):
            order = order.copy()
            if n_moved >= 2:
                slots = rng.choice(n, size=n_moved, replace=False)
                order[slots] = np.roll(order[slots], 1)
            orders.append(order)
        return orders

    def build_trace(self, fileset: FileSet) -> Trace:
        """Sample arrivals and per-request file ids (with drift phases)."""
        cfg = self.config
        rng = rng_from(cfg.seed + 2)
        if cfg.bursty:
            times = onoff_bursty_arrivals(cfg.n_requests, cfg.mean_interarrival_s, seed=rng)
        else:
            times = poisson_arrivals(cfg.n_requests, cfg.mean_interarrival_s, seed=rng)
        ranks = zipf_sample_ranks(len(fileset), cfg.zipf_alpha, cfg.n_requests, seed=rng)
        orders = self.drifted_orders(fileset)
        file_ids = np.empty(cfg.n_requests, dtype=np.int64)
        bounds = np.linspace(0, cfg.n_requests, len(orders) + 1).astype(np.int64)
        for seg, order in enumerate(orders):
            lo, hi = bounds[seg], bounds[seg + 1]
            file_ids[lo:hi] = order[ranks[lo:hi]]
        return Trace(times, file_ids)

    def generate(self) -> tuple[FileSet, Trace]:
        """Build the file set and a matching trace in one call."""
        fileset = self.build_fileset()
        return fileset, self.build_trace(fileset)
