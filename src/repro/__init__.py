"""repro — reproduction of "Sacrificing Reliability for Energy Saving:
Is It Worthwhile for Disk Arrays?" (Tao Xie & Yao Sun, IPPS/IPDPS 2008).

The library has two headline artifacts and the full substrate beneath
them:

* :class:`~repro.press.PRESSModel` — the PRESS reliability model
  mapping (temperature, utilization, speed-transition frequency) to an
  Annualized Failure Rate, per disk and per array (paper Sec. 3);
* :class:`~repro.core.READPolicy` — the READ energy-saving strategy
  with reliability awareness (paper Sec. 4), plus the MAID and PDC
  baselines it is compared against (paper Sec. 5);
* a discrete-event simulator of two-speed disk arrays
  (:mod:`repro.sim`, :mod:`repro.disk`), workload generators and trace
  readers (:mod:`repro.workload`), and an experiment harness that
  regenerates every figure of the paper (:mod:`repro.experiments`).

Quickstart::

    from repro import ExperimentConfig, make_policy, run_simulation

    cfg = ExperimentConfig()                 # WorldCup98-like workload
    fileset, trace = cfg.generate()
    result = run_simulation(make_policy("read"), fileset, trace, n_disks=10)
    print(result.summary_row())
"""

from repro.core import READConfig, READPolicy
from repro.disk import DiskArray, DiskSpeed, TwoSpeedDiskParams, TwoSpeedDrive, cheetah_two_speed
from repro.experiments import (
    CostAssumptions,
    ExperimentConfig,
    SimulationResult,
    evaluate_worthwhileness,
    figure7_comparison,
    headline_summary,
    make_policy,
    run_simulation,
)
from repro.policies import (
    MAIDConfig,
    MAIDPolicy,
    PDCConfig,
    PDCPolicy,
    Policy,
    StaticHighPolicy,
    StaticLowPolicy,
)
from repro.press import CombinationStrategy, PRESSModel, ReliabilityIntegrator, paper_calibration
from repro.sim import Simulator
from repro.workload import FileSet, SyntheticWorkloadConfig, Trace, WorldCupLikeWorkload

__version__ = "1.0.0"

__all__ = [
    "READConfig",
    "READPolicy",
    "DiskArray",
    "DiskSpeed",
    "TwoSpeedDiskParams",
    "TwoSpeedDrive",
    "cheetah_two_speed",
    "CostAssumptions",
    "ExperimentConfig",
    "SimulationResult",
    "evaluate_worthwhileness",
    "figure7_comparison",
    "headline_summary",
    "make_policy",
    "run_simulation",
    "MAIDConfig",
    "MAIDPolicy",
    "PDCConfig",
    "PDCPolicy",
    "Policy",
    "StaticHighPolicy",
    "StaticLowPolicy",
    "CombinationStrategy",
    "PRESSModel",
    "ReliabilityIntegrator",
    "paper_calibration",
    "Simulator",
    "FileSet",
    "SyntheticWorkloadConfig",
    "Trace",
    "WorldCupLikeWorkload",
    "__version__",
]
