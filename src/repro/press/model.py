"""The assembled PRESS model (paper Fig. 1, Sec. 3.5).

``PRESSModel`` wires the three reliability functions into the
integrator.  It is consumed two ways:

* analytically — :meth:`PRESSModel.disk_afr` on explicit factor values,
  and :meth:`PRESSModel.afr_surface` for the Fig. 5 surfaces;
* against a simulation — :meth:`PRESSModel.evaluate_drive` extracts the
  three ESRRA factors from a finished :class:`~repro.disk.TwoSpeedDrive`
  and :meth:`PRESSModel.evaluate_array` reduces over the array with the
  max rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.disk.array import DiskArray
from repro.disk.drive import TwoSpeedDrive
from repro.disk.state import ArrayState
from repro.press.frequency import FrequencyReliability
from repro.press.integrator import CombinationStrategy, ReliabilityIntegrator
from repro.press.temperature import TemperatureReliability
from repro.press.utilization import UtilizationReliability
from repro.util.validation import require, require_non_negative, require_positive

__all__ = ["DiskFactors", "PRESSModel"]


@dataclass(frozen=True, slots=True)
class DiskFactors:
    """The three ESRRA factors of one disk, plus its resulting AFR."""

    disk_id: int
    mean_temperature_c: float
    utilization_percent: float
    transitions_per_day: float
    afr_percent: float


class PRESSModel:
    """Predictor of Reliability for Energy-Saving Schemes.

    Parameters
    ----------
    temperature / utilization / frequency:
        The three reliability functions; defaults are the paper's.
    integrator:
        Combination + reduction rules; defaults to MEAN_PLUS_ADDER / max.

    Examples
    --------
    >>> press = PRESSModel()
    >>> low = press.disk_afr(40.0, 30.0, 5.0)
    >>> high = press.disk_afr(50.0, 90.0, 200.0)
    >>> high > low
    True
    """

    def __init__(self, *, temperature: TemperatureReliability | None = None,
                 utilization: UtilizationReliability | None = None,
                 frequency: FrequencyReliability | None = None,
                 integrator: ReliabilityIntegrator | None = None) -> None:
        self.temperature = temperature or TemperatureReliability()
        self.utilization = utilization or UtilizationReliability()
        self.frequency = frequency or FrequencyReliability()
        self.integrator = integrator or ReliabilityIntegrator()

    @classmethod
    def with_strategy(cls, strategy: CombinationStrategy,
                      **kwargs: float) -> "PRESSModel":
        """Build a model differing from the default only in combination rule."""
        return cls(integrator=ReliabilityIntegrator(strategy, **kwargs))

    # ------------------------------------------------------------------
    # analytic interface
    # ------------------------------------------------------------------
    def disk_afr(self, temp_c: float, utilization_percent: float,
                 transitions_per_day: float) -> float:
        """AFR (percent) of one disk from its three ESRRA factor values."""
        t_afr = self.temperature(temp_c)
        u_afr = self.utilization(utilization_percent)
        f_afr = self.frequency(transitions_per_day)
        return float(self.integrator.disk_afr(t_afr, u_afr, f_afr))

    def disk_afr_batch(self, temp_c: npt.ArrayLike,
                       utilization_percent: npt.ArrayLike,
                       transitions_per_day: npt.ArrayLike) -> npt.NDArray[np.float64]:
        """AFR of many disks in one call — the whole-array form of
        :meth:`disk_afr`.

        All three reliability functions are elementwise (PCHIP
        evaluation, step lookup, quadratic), so batch evaluation is
        bit-identical to calling :meth:`disk_afr` per element — the
        struct-of-arrays backend and :meth:`rescore_factors` rely on
        that equivalence (checked by the cross-backend suite).
        """
        t_afr = np.asarray(self.temperature(np.asarray(temp_c, dtype=np.float64)),
                           dtype=np.float64)
        u_afr = np.asarray(self.utilization(np.asarray(utilization_percent,
                                                       dtype=np.float64)),
                           dtype=np.float64)
        f_afr = np.asarray(self.frequency(np.asarray(transitions_per_day,
                                                     dtype=np.float64)),
                           dtype=np.float64)
        return np.asarray(self.integrator.disk_afr(t_afr, u_afr, f_afr),
                          dtype=np.float64)

    def afr_surface(self, temp_c: float, utilization_percent: npt.ArrayLike,
                    transitions_per_day: npt.ArrayLike) -> npt.NDArray[np.float64]:
        """AFR grid at fixed temperature — one Fig. 5 panel.

        Returns shape ``(len(utilization_percent), len(transitions_per_day))``.
        The paper presents the panels at 40 degC (low speed, Fig. 5a) and
        50 degC (high speed, Fig. 5b).
        """
        utils = np.asarray(utilization_percent, dtype=np.float64)
        freqs = np.asarray(transitions_per_day, dtype=np.float64)
        require(utils.ndim == 1 and freqs.ndim == 1, "grids must be 1-D")
        t_afr = float(np.asarray(self.temperature(temp_c)))
        u_afr = np.asarray(self.utilization(utils), dtype=np.float64)[:, None]
        f_afr = np.asarray(self.frequency(freqs), dtype=np.float64)[None, :]
        surface = self.integrator.disk_afr(np.full_like(u_afr, t_afr), u_afr, f_afr)
        return np.asarray(surface, dtype=np.float64)

    # ------------------------------------------------------------------
    # simulation interface
    # ------------------------------------------------------------------
    def factors_of(self, drive: TwoSpeedDrive, duration_s: float) -> DiskFactors:
        """Extract ESRRA factors from a finalized drive and score it.

        ``duration_s`` is the simulated horizon used to normalize the
        transition count to a daily rate and as the power-on time for
        utilization.  Call :meth:`~repro.disk.TwoSpeedDrive.finalize` (or
        :meth:`DiskArray.finalize`) beforehand so the ledgers are flushed.
        """
        require_positive(duration_s, "duration_s")
        temp_c = drive.thermal.mean_temperature_c()
        util_pct = 100.0 * drive.stats.utilization(drive.energy.active_time_s, duration_s)
        freq = drive.stats.transitions_per_day(duration_s)
        return DiskFactors(
            disk_id=drive.disk_id,
            mean_temperature_c=temp_c,
            utilization_percent=util_pct,
            transitions_per_day=freq,
            afr_percent=self.disk_afr(temp_c, util_pct, freq),
        )

    def factors_of_state(self, state: ArrayState,
                         duration_s: float) -> list[DiskFactors]:
        """Extract and score every disk's ESRRA factors in one sweep.

        The struct-of-arrays form of :meth:`factors_of`: the three
        factor vectors are gathered from the shared buffers and scored
        through :meth:`disk_afr_batch`, all as whole-array expressions.
        The arithmetic (and hence every value) is bit-identical to the
        per-drive path; flush the ledgers (``DiskArray.finalize``)
        beforehand, exactly as for :meth:`factors_of`.
        """
        require_positive(duration_s, "duration_s")
        temp_c = state.mean_temperature_c()
        util_pct = 100.0 * np.minimum(state.active_time_s() / duration_s, 1.0)
        freq = state.transitions_per_day(duration_s)
        afr = self.disk_afr_batch(temp_c, util_pct, freq)
        return [
            DiskFactors(disk_id=i, mean_temperature_c=t, utilization_percent=u,
                        transitions_per_day=q, afr_percent=a)
            for i, (t, u, q, a) in enumerate(zip(temp_c.tolist(), util_pct.tolist(),
                                                 freq.tolist(), afr.tolist()))
        ]

    def evaluate_array(self, array: DiskArray,
                       duration_s: float | None = None) -> tuple[float, list[DiskFactors]]:
        """Array AFR (max over disks, Sec. 3.5) plus per-disk factor detail.

        On the struct-of-arrays backend (``array.state`` is set) the
        factor extraction and scoring run as one vectorized sweep over
        the shared buffers instead of a per-drive object walk.
        """
        if duration_s is None:
            duration_s = array.sim.now
        require_non_negative(duration_s, "duration_s")
        array.finalize()
        state = getattr(array, "state", None)
        if state is not None:
            factors = self.factors_of_state(state, duration_s)
        else:
            factors = [self.factors_of(d, duration_s) for d in array.drives]
        afr = self.integrator.array_afr(f.afr_percent for f in factors)
        return afr, factors

    # ------------------------------------------------------------------
    # re-scoring (evaluate-only path)
    # ------------------------------------------------------------------
    def rescore_factors(self, factors: list[DiskFactors] | tuple[DiskFactors, ...],
                        ) -> tuple[float, list[DiskFactors]]:
        """Score already-extracted ESRRA factors under *this* model.

        The simulation determines only the raw factor values (mean
        temperature, utilization, transition frequency) — scoring them
        into AFRs is a pure function of the model.  Sweeps over scoring
        choices (e.g. the integrator combination strategy) therefore
        need one trace replay, re-scored per model, instead of one
        replay per model.  Returns ``(array_afr, new_factors)`` with each
        disk's ``afr_percent`` recomputed; the raw factor fields are
        copied through unchanged.
        """
        require(len(factors) >= 1, "need factors for at least one disk")
        afrs = self.disk_afr_batch(
            [f.mean_temperature_c for f in factors],
            [f.utilization_percent for f in factors],
            [f.transitions_per_day for f in factors],
        )
        rescored = [
            DiskFactors(
                disk_id=f.disk_id,
                mean_temperature_c=f.mean_temperature_c,
                utilization_percent=f.utilization_percent,
                transitions_per_day=f.transitions_per_day,
                afr_percent=a,
            )
            for f, a in zip(factors, afrs.tolist())
        ]
        afr = self.integrator.array_afr(f.afr_percent for f in rescored)
        return afr, rescored
