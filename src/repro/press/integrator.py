"""Reliability integrator (paper Sec. 3.5).

The integrator has the paper's two jobs:

1. fuse the three per-factor AFR estimates into a single per-disk AFR;
2. reduce per-disk AFRs to one array-level AFR — the paper is explicit
   here: "the reliability level of a disk array is only as high as the
   lowest level of reliability possessed by a single disk", i.e. the
   array AFR is the **max** over disks.

For step 1 the paper gives no formula, so the combination is a pluggable
strategy (DESIGN.md, inconsistencies item 4).  The default,
``MEAN_PLUS_ADDER``, reflects what the inputs *are*: the temperature and
utilization functions each estimate the same disk's base AFR from field
data (averaged), while the frequency function is explicitly an *adder*
on top (IDEMA's term).  ``SUM`` and ``MAX_PLUS_ADDER`` bound the default
from above/below and feed the ablation bench.
"""

from __future__ import annotations

import enum
from typing import Iterable

import numpy as np
import numpy.typing as npt

from repro.util.validation import require, require_fraction

__all__ = ["CombinationStrategy", "ReliabilityIntegrator"]


class CombinationStrategy(enum.Enum):
    """How per-factor AFRs combine into one disk AFR."""

    #: mean(temperature, utilization) + frequency adder  (default)
    MEAN_PLUS_ADDER = "mean_plus_adder"
    #: max(temperature, utilization) + frequency adder (pessimistic base)
    MAX_PLUS_ADDER = "max_plus_adder"
    #: temperature + utilization + frequency (treats all three as adders)
    SUM = "sum"
    #: w*temperature + (1-w)*utilization + frequency adder
    WEIGHTED = "weighted"


class ReliabilityIntegrator:
    """Combines ESRRA-factor AFRs (step 1) and reduces over disks (step 2).

    Parameters
    ----------
    strategy:
        Combination rule for step 1.
    temperature_weight:
        Only for ``WEIGHTED``: weight of the temperature estimate in the
        base AFR (utilization gets the complement).
    """

    def __init__(self, strategy: CombinationStrategy = CombinationStrategy.MEAN_PLUS_ADDER,
                 *, temperature_weight: float = 0.5) -> None:
        self.strategy = strategy
        self.temperature_weight = require_fraction(temperature_weight, "temperature_weight")

    # ------------------------------------------------------------------
    def disk_afr(self, temp_afr: float | npt.NDArray[np.float64], util_afr: float | npt.NDArray[np.float64],
                 freq_afr: float | npt.NDArray[np.float64]) -> float | npt.NDArray[np.float64]:
        """Fuse the three per-factor AFRs (all percent) into one disk AFR."""
        t = np.asarray(temp_afr, dtype=np.float64)
        u = np.asarray(util_afr, dtype=np.float64)
        f = np.asarray(freq_afr, dtype=np.float64)
        for name, arr in (("temp_afr", t), ("util_afr", u), ("freq_afr", f)):
            require(bool(np.all(np.isfinite(arr)) and np.all(arr >= 0)),
                    f"{name} must be finite and >= 0")

        if self.strategy is CombinationStrategy.MEAN_PLUS_ADDER:
            out = 0.5 * (t + u) + f
        elif self.strategy is CombinationStrategy.MAX_PLUS_ADDER:
            out = np.maximum(t, u) + f
        elif self.strategy is CombinationStrategy.SUM:
            out = t + u + f
        elif self.strategy is CombinationStrategy.WEIGHTED:
            w = self.temperature_weight
            out = w * t + (1.0 - w) * u + f
        else:  # pragma: no cover - enum is exhaustive
            raise AssertionError(f"unhandled strategy {self.strategy}")

        if all(np.ndim(x) == 0 for x in (temp_afr, util_afr, freq_afr)):
            return float(out)
        return np.asarray(out, dtype=np.float64)

    # ------------------------------------------------------------------
    @staticmethod
    def array_afr(disk_afrs: Iterable[float]) -> float:
        """Array AFR = AFR of the least reliable disk (Sec. 3.5)."""
        values = np.asarray(list(disk_afrs), dtype=np.float64)
        require(values.size >= 1, "array_afr needs at least one disk AFR")
        require(bool(np.all(np.isfinite(values)) and np.all(values >= 0)),
                "disk AFRs must be finite and >= 0")
        return float(values.max())
