"""Sensitivity analysis of the PRESS model (Sec. 3.5's insight ranking,
made quantitative).

The paper ranks the ESRRA factors by importance — frequency first,
temperature second, utilization last — from inspection of the model.
This module computes that ranking for *any* operating point and factor
ranges: tornado swings (one-at-a-time low/high excursions), 1-D partial
effect curves, and local sensitivities, all against a configurable
:class:`~repro.press.model.PRESSModel` so the ablation integrators can
be analyzed too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.press.model import PRESSModel
from repro.util.validation import require

__all__ = ["FactorRange", "DEFAULT_RANGES", "TornadoBar", "tornado",
           "partial_effect", "dominant_factor"]

FACTORS = ("temperature", "utilization", "frequency")


@dataclass(frozen=True, slots=True)
class FactorRange:
    """Excursion range of one ESRRA factor."""

    low: float
    high: float

    def __post_init__(self) -> None:
        require(self.low <= self.high, "range low must be <= high")


#: The operating envelope of the paper's two-speed disks: temperatures
#: between the low-speed and high-speed steady states, the utilization
#: function's domain, and Eq. 3's frequency domain.
DEFAULT_RANGES: dict[str, FactorRange] = {
    "temperature": FactorRange(35.0, 50.0),
    "utilization": FactorRange(25.0, 100.0),
    "frequency": FactorRange(0.0, 1600.0),
}


@dataclass(frozen=True, slots=True)
class TornadoBar:
    """One factor's one-at-a-time excursion around the base point."""

    factor: str
    afr_at_low: float
    afr_at_high: float
    base_afr: float

    @property
    def swing(self) -> float:
        """Total AFR movement across the factor's range."""
        return abs(self.afr_at_high - self.afr_at_low)


def _evaluate(press: PRESSModel, temp: float, util: float, freq: float) -> float:
    return press.disk_afr(temp, util, freq)


def _point_with(base: dict[str, float], factor: str, value: float) -> dict[str, float]:
    out = dict(base)
    out[factor] = value
    return out


def _check_base(base: dict[str, float]) -> None:
    require(set(base) == set(FACTORS),
            f"base point must have exactly the keys {FACTORS}")


def tornado(press: PRESSModel | None = None, *,
            base: dict[str, float] | None = None,
            ranges: dict[str, FactorRange] | None = None) -> list[TornadoBar]:
    """One-at-a-time sensitivity bars, sorted by swing (largest first).

    Defaults: the paper's default model, a mid-envelope base point
    (42.5 degC, 50 % utilization, 40 transitions/day — READ's cap), and
    :data:`DEFAULT_RANGES`.
    """
    model = press or PRESSModel()
    pt = base or {"temperature": 42.5, "utilization": 50.0, "frequency": 40.0}
    _check_base(pt)
    rngs = ranges or DEFAULT_RANGES
    require(set(rngs) == set(FACTORS), f"ranges must cover exactly {FACTORS}")

    base_afr = _evaluate(model, pt["temperature"], pt["utilization"], pt["frequency"])
    bars: list[TornadoBar] = []
    for factor in FACTORS:
        lo_pt = _point_with(pt, factor, rngs[factor].low)
        hi_pt = _point_with(pt, factor, rngs[factor].high)
        bars.append(TornadoBar(
            factor=factor,
            afr_at_low=_evaluate(model, lo_pt["temperature"], lo_pt["utilization"],
                                 lo_pt["frequency"]),
            afr_at_high=_evaluate(model, hi_pt["temperature"], hi_pt["utilization"],
                                  hi_pt["frequency"]),
            base_afr=base_afr,
        ))
    return sorted(bars, key=lambda b: b.swing, reverse=True)


def partial_effect(factor: str, *, press: PRESSModel | None = None,
                   base: dict[str, float] | None = None,
                   n_points: int = 33,
                   factor_range: FactorRange | None = None
                   ) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
    """1-D AFR curve along one factor, others held at the base point."""
    require(factor in FACTORS, f"factor must be one of {FACTORS}")
    require(n_points >= 2, "n_points must be >= 2")
    model = press or PRESSModel()
    pt = base or {"temperature": 42.5, "utilization": 50.0, "frequency": 40.0}
    _check_base(pt)
    rng = factor_range or DEFAULT_RANGES[factor]
    xs = np.linspace(rng.low, rng.high, n_points)
    ys = np.array([
        _evaluate(model, *(_point_with(pt, factor, float(x))[k]
                           for k in FACTORS))
        for x in xs
    ])
    return xs, ys


def dominant_factor(press: PRESSModel | None = None, *,
                    base: dict[str, float] | None = None,
                    ranges: dict[str, FactorRange] | None = None) -> str:
    """The factor with the largest tornado swing at the base point.

    At the paper's default model and envelope this returns
    ``"frequency"`` — Sec. 3.5 insight 1.
    """
    return tornado(press, base=base, ranges=ranges)[0].factor
