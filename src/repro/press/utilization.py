"""Utilization-reliability function (paper Sec. 3.3, Fig. 3b).

Utilization is "the fraction of active time of a drive out of its total
power-on time".  The paper converts the Google study's low/medium/high
categories into numeric ranges —

* low:    [25, 50) percent
* medium: [50, 75) percent
* high:   [75, 100] percent

— and adopts the **4-year-old** population's AFR per bucket (their
reasoning for rejecting the 2/3-year groups is reproduced in DESIGN.md).
The canonical function is therefore a step function over those ranges;
a smooth monotone variant (piecewise-linear through bucket midpoints) is
provided for the Fig. 5 surfaces where a step function would print
artificial cliffs, and for gradient-based what-if analyses.

Utilizations below 25 % are clamped to the low bucket: the source data
simply has no colder bin, and the paper's own domain is [25, 100].
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.util.validation import require

__all__ = ["GOOGLE_4YR_UTILIZATION_BUCKETS", "UtilizationReliability"]

#: (bucket lower edge percent, AFR percent) for the low/medium/high
#: categories, digitized from [22]'s Fig. 3, 4-year-old population.
GOOGLE_4YR_UTILIZATION_BUCKETS: tuple[tuple[float, float], ...] = (
    (25.0, 6.0),   # low    [25, 50)
    (50.0, 8.0),   # medium [50, 75)
    (75.0, 12.0),  # high   [75, 100]
)

_BUCKET_WIDTH = 25.0


class UtilizationReliability:
    """Callable mapping utilization (percent) to AFR (percent).

    Parameters
    ----------
    buckets:
        ``(lower_edge_percent, afr_percent)`` triples of equal 25-point
        width; defaults to the digitized 4-year-old Google data.
    smooth:
        ``False`` (default): the paper's step function.  ``True``:
        monotone piecewise-linear through bucket midpoints, clamped flat
        beyond the outer midpoints.
    """

    def __init__(self, buckets: tuple[tuple[float, float], ...] = GOOGLE_4YR_UTILIZATION_BUCKETS,
                 *, smooth: bool = False) -> None:
        require(len(buckets) >= 2, "need at least two buckets")
        edges = np.array([b[0] for b in buckets], dtype=np.float64)
        afrs = np.array([b[1] for b in buckets], dtype=np.float64)
        require(bool(np.all(np.diff(edges) > 0)), "bucket edges must be strictly increasing")
        require(bool(np.all(np.diff(afrs) >= 0)), "bucket AFRs must be non-decreasing")
        require(bool(np.all(afrs >= 0)), "bucket AFRs must be non-negative")
        self._edges = edges
        self._afrs = afrs
        self._smooth = smooth
        self._midpoints = edges + _BUCKET_WIDTH / 2.0

    @property
    def smooth(self) -> bool:
        """Whether this instance interpolates between bucket midpoints."""
        return self._smooth

    @property
    def domain_percent(self) -> tuple[float, float]:
        """Utilization domain of the function, percent."""
        return (float(self._edges[0]), float(self._edges[-1]) + _BUCKET_WIDTH)

    def bucket_of(self, utilization_percent: float) -> str:
        """The paper's category name for a utilization value."""
        u = float(utilization_percent)
        require(np.isfinite(u), "utilization must be finite")
        if u < 50.0:
            return "low"
        if u < 75.0:
            return "medium"
        return "high"

    def __call__(self, utilization_percent: float | npt.NDArray[np.float64]) -> float | npt.NDArray[np.float64]:
        """AFR (percent) for utilization in percent (clamped to [25, 100])."""
        u = np.asarray(utilization_percent, dtype=np.float64)
        require(bool(np.all(np.isfinite(u))), "utilization must be finite")
        require(bool(np.all(u >= 0.0)) and bool(np.all(u <= 100.0 + 1e-9)),
                "utilization must be in [0, 100] percent")
        clipped = np.clip(u, self._edges[0], self._edges[-1] + _BUCKET_WIDTH)
        if self._smooth:
            out = np.interp(clipped, self._midpoints, self._afrs)
        else:
            idx = np.clip(np.searchsorted(self._edges, clipped, side="right") - 1,
                          0, len(self._afrs) - 1)
            out = self._afrs[idx]
        if np.ndim(utilization_percent) == 0:
            return float(out)
        return np.asarray(out, dtype=np.float64)

    def from_fraction(self, utilization_fraction: float | npt.NDArray[np.float64]) -> float | npt.NDArray[np.float64]:
        """Same mapping with utilization given as a fraction in [0, 1]."""
        return self(np.asarray(utilization_fraction, dtype=np.float64) * 100.0)

    def curve(self, n_points: int = 151) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
        """Sampled (utilization %, AFR %) over [25, 100] — Fig. 3b's series."""
        require(n_points >= 2, "n_points must be >= 2")
        utils = np.linspace(25.0, 100.0, n_points)
        return utils, np.asarray(self(utils), dtype=np.float64)
