"""AFR-to-hazard-rate conversion shared by the fault injector and the
Monte Carlo failure analysis.

This lives in :mod:`repro.press` (not :mod:`repro.experiments`) because
it is pure reliability math on PRESS's output — and because both
:mod:`repro.faults` and :mod:`repro.experiments` consume it, it must sit
below both in the import layering (ARCH001).
"""

from __future__ import annotations

import math

from repro.util.validation import require

__all__ = ["annual_failure_rate_to_rate"]


def annual_failure_rate_to_rate(afr_percent: float) -> float:
    """Poisson failure rate (per year) equivalent to an AFR.

    Solves ``1 - exp(-rate) == afr``: for small AFRs this is ~AFR, but
    the exact form stays meaningful for the pathological AFRs aggressive
    schemes can reach (Eq. 3 tops out near 38%).
    """
    require(0.0 <= afr_percent < 100.0,
            f"afr_percent must be in [0, 100), got {afr_percent}")
    return -math.log1p(-afr_percent / 100.0)
