"""Temperature-reliability function (paper Sec. 3.2, Fig. 2b).

The paper adopts the Google/FAST'07 field statistics for **3-year-old**
disks as its temperature-AFR curve, arguing (Sec. 3.2) that the third
year is where the accumulated damage of earlier high-temperature
operation surfaces as failures, while 4-year data "loses" the hidden
failures and younger-disk data hides the effect entirely.

The published source is a bar chart, not a table, so the anchors below
are digitized estimates (see DESIGN.md "Digitized Google-data anchors").
Between anchors we interpolate with PCHIP — monotone by construction, so
the model preserves the one property every downstream claim rests on:
**AFR is non-decreasing in temperature**.  Outside the observed range
the curve is clamped to the boundary values rather than extrapolated
(field data gives no license to extrapolate a bar chart).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt
from scipy.interpolate import PchipInterpolator

from repro.util.validation import require

__all__ = ["GOOGLE_3YR_TEMPERATURE_ANCHORS", "TemperatureReliability"]

#: (temperature degC, AFR percent) anchors digitized from [22]'s Fig. 5,
#: 3-year-old population.
GOOGLE_3YR_TEMPERATURE_ANCHORS: tuple[tuple[float, float], ...] = (
    (25.0, 4.5),
    (30.0, 5.0),
    (35.0, 6.5),
    (40.0, 9.0),
    (45.0, 12.0),
    (50.0, 15.0),
)


class TemperatureReliability:
    """Callable mapping operating temperature (degC) to AFR (percent).

    Parameters
    ----------
    anchors:
        ``(temp_c, afr_percent)`` pairs, strictly increasing in both
        coordinates.  Defaults to the digitized 3-year-old Google data.

    Examples
    --------
    >>> f = TemperatureReliability()
    >>> f(40.0)
    9.0
    >>> f(50.0) > f(35.0)
    True
    """

    def __init__(self, anchors: tuple[tuple[float, float], ...] = GOOGLE_3YR_TEMPERATURE_ANCHORS) -> None:
        require(len(anchors) >= 2, "need at least two anchors")
        temps = np.array([a[0] for a in anchors], dtype=np.float64)
        afrs = np.array([a[1] for a in anchors], dtype=np.float64)
        require(bool(np.all(np.diff(temps) > 0)), "anchor temperatures must be strictly increasing")
        require(bool(np.all(np.diff(afrs) >= 0)), "anchor AFRs must be non-decreasing")
        require(bool(np.all(afrs >= 0)), "anchor AFRs must be non-negative")
        self._t_min = float(temps[0])
        self._t_max = float(temps[-1])
        self._interp = PchipInterpolator(temps, afrs, extrapolate=False)
        self._lo_val = float(afrs[0])
        self._hi_val = float(afrs[-1])

    @property
    def domain_c(self) -> tuple[float, float]:
        """Temperature range covered by the anchors, degC."""
        return (self._t_min, self._t_max)

    def __call__(self, temp_c: float | npt.NDArray[np.float64]) -> float | npt.NDArray[np.float64]:
        """AFR (percent) at ``temp_c``; clamped outside the anchor range."""
        t = np.asarray(temp_c, dtype=np.float64)
        require(bool(np.all(np.isfinite(t))), "temperature must be finite")
        clipped = np.clip(t, self._t_min, self._t_max)
        out = self._interp(clipped)
        if np.ndim(temp_c) == 0:
            return float(out)
        return np.asarray(out, dtype=np.float64)

    def curve(self, n_points: int = 101) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
        """Sampled (temps, AFRs) over the anchor domain — Fig. 2b's series."""
        require(n_points >= 2, "n_points must be >= 2")
        temps = np.linspace(self._t_min, self._t_max, n_points)
        return temps, np.asarray(self(temps), dtype=np.float64)
