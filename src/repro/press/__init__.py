"""PRESS — Predictor of Reliability for Energy-Saving Schemes (Sec. 3).

PRESS maps the three energy-saving-related reliability-affecting (ESRRA)
factors to an Annualized Failure Rate:

* operating temperature (degC) -> :mod:`repro.press.temperature`
  (digitized from the Google/FAST'07 3-year-old field data, Fig. 2);
* disk utilization (percent)   -> :mod:`repro.press.utilization`
  (digitized 4-year-old field data, Fig. 3);
* speed-transition frequency (per day) -> :mod:`repro.press.frequency`
  (IDEMA start/stop adder halved via the modified Coffin-Manson
  analysis of Sec. 3.4, Fig. 4 / Eq. 3).

A pluggable :mod:`integrator <repro.press.integrator>` fuses the three
per-factor AFRs into one per-disk AFR, and the array's AFR is that of
its least reliable disk (Sec. 3.5).  All AFR values throughout are in
**percent per year**.
"""

from repro.press.temperature import TemperatureReliability, GOOGLE_3YR_TEMPERATURE_ANCHORS
from repro.press.utilization import UtilizationReliability, GOOGLE_4YR_UTILIZATION_BUCKETS
from repro.press.frequency import (
    FrequencyReliability,
    frequency_afr_adder_percent,
    idema_start_stop_adder_percent,
)
from repro.press.coffin_manson import (
    BOLTZMANN_EV_PER_K,
    CoffinManson,
    arrhenius_acceleration,
    paper_calibration,
)
from repro.press.integrator import CombinationStrategy, ReliabilityIntegrator
from repro.press.sensitivity import (
    DEFAULT_RANGES,
    FactorRange,
    TornadoBar,
    dominant_factor,
    partial_effect,
    tornado,
)
from repro.press.model import DiskFactors, PRESSModel

__all__ = [
    "TemperatureReliability",
    "GOOGLE_3YR_TEMPERATURE_ANCHORS",
    "UtilizationReliability",
    "GOOGLE_4YR_UTILIZATION_BUCKETS",
    "FrequencyReliability",
    "frequency_afr_adder_percent",
    "idema_start_stop_adder_percent",
    "BOLTZMANN_EV_PER_K",
    "CoffinManson",
    "arrhenius_acceleration",
    "paper_calibration",
    "CombinationStrategy",
    "ReliabilityIntegrator",
    "DEFAULT_RANGES",
    "FactorRange",
    "TornadoBar",
    "dominant_factor",
    "partial_effect",
    "tornado",
    "DiskFactors",
    "PRESSModel",
]
