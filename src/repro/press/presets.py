"""Alternative anchor sets for the PRESS reliability functions.

The temperature and utilization functions are digitized from published
bar charts (DESIGN.md), which makes the *absolute* anchor values the
reproduction's softest spot.  This module packages that uncertainty:
named presets spanning the plausible digitization range, plus the
4-year-old temperature curve the paper considered and rejected, so any
experiment can be re-run under every reading of the source figures.

``bench_anchor_uncertainty.py`` sweeps the Fig. 7a comparison across
these presets to show the paper's *orderings* survive any of them — the
claim EXPERIMENTS.md relies on.
"""

from __future__ import annotations

from repro.press.model import PRESSModel
from repro.press.temperature import GOOGLE_3YR_TEMPERATURE_ANCHORS, TemperatureReliability
from repro.press.utilization import GOOGLE_4YR_UTILIZATION_BUCKETS, UtilizationReliability
from repro.util.validation import require

__all__ = [
    "TEMPERATURE_PRESETS",
    "UTILIZATION_PRESETS",
    "press_model_preset",
    "preset_names",
]

#: Temperature-anchor readings.  ``paper-3yr`` is the default; the
#: ``-low``/``-high`` variants bound the bar-chart reading error (about
#: one gridline either way); ``google-4yr`` is the curve the paper
#: explicitly rejected (Sec. 3.2: the 4-year data "substantially loses
#: the hidden disk failures") — included so the rejection is testable.
TEMPERATURE_PRESETS: dict[str, tuple[tuple[float, float], ...]] = {
    "paper-3yr": GOOGLE_3YR_TEMPERATURE_ANCHORS,
    "paper-3yr-low": (
        (25.0, 3.5), (30.0, 4.0), (35.0, 5.5), (40.0, 7.5), (45.0, 10.0), (50.0, 13.0),
    ),
    "paper-3yr-high": (
        (25.0, 5.5), (30.0, 6.5), (35.0, 8.0), (40.0, 10.5), (45.0, 14.0), (50.0, 17.0),
    ),
    # 4-year-old population: higher base level, flatter slope (the
    # failures "already surfaced" in year 3 per the paper's argument)
    "google-4yr": (
        (25.0, 6.0), (30.0, 6.5), (35.0, 7.5), (40.0, 9.5), (45.0, 11.0), (50.0, 12.5),
    ),
}

#: Utilization-bucket readings, same convention.
UTILIZATION_PRESETS: dict[str, tuple[tuple[float, float], ...]] = {
    "paper-4yr": GOOGLE_4YR_UTILIZATION_BUCKETS,
    "paper-4yr-low": ((25.0, 5.0), (50.0, 6.5), (75.0, 10.0)),
    "paper-4yr-high": ((25.0, 7.0), (50.0, 9.5), (75.0, 14.0)),
    #: the "slim difference" reading of Sec. 3.5 insight 3 taken to its
    #: extreme: barely any utilization effect at all
    "flat": ((25.0, 7.0), (50.0, 7.5), (75.0, 8.0)),
}


def preset_names() -> list[tuple[str, str]]:
    """All (temperature, utilization) preset combinations."""
    return [(t, u) for t in TEMPERATURE_PRESETS for u in UTILIZATION_PRESETS]


def press_model_preset(temperature: str = "paper-3yr",
                       utilization: str = "paper-4yr") -> PRESSModel:
    """Build a :class:`PRESSModel` from named anchor presets.

    The frequency function is Eq. 3 — the one function with a printed
    closed form, hence no digitization uncertainty to sweep.
    """
    require(temperature in TEMPERATURE_PRESETS,
            f"unknown temperature preset {temperature!r}; "
            f"known: {sorted(TEMPERATURE_PRESETS)}")
    require(utilization in UTILIZATION_PRESETS,
            f"unknown utilization preset {utilization!r}; "
            f"known: {sorted(UTILIZATION_PRESETS)}")
    return PRESSModel(
        temperature=TemperatureReliability(TEMPERATURE_PRESETS[temperature]),
        utilization=UtilizationReliability(UTILIZATION_PRESETS[utilization]),
    )
