"""Modified Coffin-Manson fatigue analysis (paper Sec. 3.4, Eqs. 1-2).

The paper justifies halving the IDEMA start/stop adder by comparing the
number of cycles-to-failure for power cycles vs speed transitions under
the modified Coffin-Manson model:

    N_f = A0 * f**alpha * dT**(-beta) * G(T_max)          (Eq. 1)
    G(T) = A * exp(-Ea / (K * T))                          (Eq. 2)

with alpha ~ -1/3 (cycling-frequency exponent), beta ~ 2 (temperature-
range exponent), Ea = 1.25 eV, K = 8.617e-5 eV/K, and T in Kelvin
(273.16 + degC per the paper).

Calibration reproduces the paper's numbers:

* power cycles: N_f = 50 000 (datasheet start/stop limit), f = 25/day
  (suggested daily power-cycle limit), dT = 22 K (ambient 28 degC to
  max 50 degC), T_max = 50 degC  ->  solves for the product A*A0;
* speed transitions: f = 25/day, dT = 10 K (the gap between the low and
  high temperature ranges), T_max = 45 degC (midway, transitions being
  bi-directional)  ->  N'_f ~ 118 529, roughly twice N_f, hence the
  "one transition ~ half a start/stop" scaling.

**Erratum reproduced here** (DESIGN.md, inconsistencies item 1): with the
paper's own inputs, A*A0 evaluates to ~2.19e27, not the printed
2.564317e26; the printed *downstream* N'_f = 118 529 is consistent with
the correct value, so this implementation reproduces N'_f, the ~2x
ratio, and the 65-transitions/day warranty bound — not the misprinted
intermediate constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import celsius_to_kelvin
from repro.util.validation import require, require_positive

__all__ = [
    "BOLTZMANN_EV_PER_K",
    "arrhenius_acceleration",
    "CoffinManson",
    "PaperCalibration",
    "paper_calibration",
]

#: Boltzmann's constant in eV/K as printed in the paper (Sec. 3.4).
BOLTZMANN_EV_PER_K = 8.617e-5

#: Paper's activation energy, eV (Sec. 3.4, from the NIST handbook [9]).
DEFAULT_ACTIVATION_ENERGY_EV = 1.25

#: Paper's exponents (Sec. 3.4): alpha ~ -1/3, beta ~ 2.
DEFAULT_ALPHA = -1.0 / 3.0
DEFAULT_BETA = 2.0


def arrhenius_acceleration(temp_c: float, *, ea_ev: float = DEFAULT_ACTIVATION_ENERGY_EV,
                           scale: float = 1.0) -> float:
    """Eq. 2: ``G(T) = scale * exp(-Ea / (K T))`` with T in Kelvin.

    With ``scale=1`` this returns G/A; the paper reports
    G(50 degC)/A = 3.2275e-20.
    """
    require_positive(ea_ev, "ea_ev")
    t_kelvin = celsius_to_kelvin(temp_c)
    require_positive(t_kelvin, "temperature in Kelvin")
    return scale * math.exp(-ea_ev / (BOLTZMANN_EV_PER_K * t_kelvin))


@dataclass(frozen=True, slots=True)
class CoffinManson:
    """Modified Coffin-Manson model with explicit exponents (Eq. 1).

    ``a_a0`` is the product of the material constant A0 and the Arrhenius
    scale factor A — they only ever appear multiplied, so they are
    calibrated and stored as one number.
    """

    alpha: float = DEFAULT_ALPHA
    beta: float = DEFAULT_BETA
    ea_ev: float = DEFAULT_ACTIVATION_ENERGY_EV
    a_a0: float = 1.0

    def __post_init__(self) -> None:
        require(self.alpha < 0, f"alpha must be negative (paper: ~-1/3), got {self.alpha}")
        require(self.beta > 0, f"beta must be positive (paper: ~2), got {self.beta}")
        require_positive(self.ea_ev, "ea_ev")
        require_positive(self.a_a0, "a_a0")

    # ------------------------------------------------------------------
    def cycles_to_failure(self, freq_per_day: float, delta_t_k: float,
                          t_max_c: float) -> float:
        """Eq. 1: N_f for cycling at ``freq_per_day`` with range ``delta_t_k``
        peaking at ``t_max_c``."""
        require_positive(freq_per_day, "freq_per_day")
        require_positive(delta_t_k, "delta_t_k")
        g_over_a = arrhenius_acceleration(t_max_c, ea_ev=self.ea_ev)
        return (self.a_a0 * freq_per_day**self.alpha
                * delta_t_k**(-self.beta) * g_over_a)

    def calibrated(self, n_f: float, freq_per_day: float, delta_t_k: float,
                   t_max_c: float) -> "CoffinManson":
        """Return a copy whose ``a_a0`` makes Eq. 1 yield ``n_f`` at the
        given operating point (the paper's power-cycle calibration step)."""
        require_positive(n_f, "n_f")
        base = CoffinManson(self.alpha, self.beta, self.ea_ev, 1.0)
        unit_nf = base.cycles_to_failure(freq_per_day, delta_t_k, t_max_c)
        return CoffinManson(self.alpha, self.beta, self.ea_ev, n_f / unit_nf)


@dataclass(frozen=True, slots=True)
class PaperCalibration:
    """All the Sec. 3.4 numbers in one audited bundle."""

    #: Calibrated model (A*A0 solved from the power-cycle point).
    model: CoffinManson
    #: Datasheet start/stop limit used for calibration.
    power_cycles_to_failure: float
    #: Speed transitions to failure at the paper's transition point.
    transitions_to_failure: float
    #: transitions_to_failure / power_cycles_to_failure (~2 per the paper).
    ratio: float
    #: Relative damage of one transition vs one start/stop (~0.5).
    damage_ratio: float
    #: Max transitions/day compatible with a warranty horizon (~65/day).
    max_transitions_per_day: float
    #: G(T_max)/A at 50 degC (paper: 3.2275e-20).
    g_over_a_at_50c: float


def paper_calibration(*, n_f: float = 50_000.0, warranty_years: float = 5.0,
                      power_cycle_freq_per_day: float = 25.0,
                      power_cycle_delta_t_k: float = 22.0,
                      power_cycle_t_max_c: float = 50.0,
                      transition_freq_per_day: float = 25.0,
                      transition_delta_t_k: float = 10.0,
                      transition_t_max_c: float = 45.0) -> PaperCalibration:
    """Run the paper's full Sec. 3.4 derivation with its published inputs.

    Defaults are exactly the paper's: 50 000 start/stop limit, 25
    cycles/day, ambient 28 -> 50 degC for power cycles; 25/day,
    40 -> 50 degC gap (dT = 10) peaking at the 45 degC midpoint for
    speed transitions; 5-year warranty for the daily bound.
    """
    require_positive(warranty_years, "warranty_years")
    model = CoffinManson().calibrated(n_f, power_cycle_freq_per_day,
                                      power_cycle_delta_t_k, power_cycle_t_max_c)
    n_f_transitions = model.cycles_to_failure(transition_freq_per_day,
                                              transition_delta_t_k,
                                              transition_t_max_c)
    ratio = n_f_transitions / n_f
    return PaperCalibration(
        model=model,
        power_cycles_to_failure=n_f,
        transitions_to_failure=n_f_transitions,
        ratio=ratio,
        damage_ratio=1.0 / ratio,
        max_transitions_per_day=n_f_transitions / (warranty_years * 365.0),
        g_over_a_at_50c=arrhenius_acceleration(power_cycle_t_max_c),
    )
