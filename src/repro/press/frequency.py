"""Frequency-reliability function (paper Sec. 3.4, Fig. 4, Eq. 3).

Disk *speed-transition frequency* is the number of spindle-speed changes
per day.  The paper builds its frequency-AFR adder in three steps:

1. start from IDEMA's spindle start/stop failure-rate adder (Fig. 4a),
   extended to [0, 1600] events/day with a quadratic fit;
2. show via the modified Coffin-Manson analysis
   (:mod:`repro.press.coffin_manson`) that one *speed transition* does
   roughly half the damage of one *start/stop* (N'_f is about twice
   N_f);
3. halve the IDEMA curve to get the frequency-reliability function, with
   the explicit quadratic (Eq. 3, AFR in percent):

       R(f) = 1.51e-5 f**2 - 1.09e-4 f + 1.39e-4,   f in [0, 1600].

Eq. 3 is implemented verbatim as the canonical artifact, with two
documented guards:

* the quadratic dips microscopically below zero near f ~ 3.6/day (an
  artifact of the unconstrained fit); a failure-rate *adder* cannot be
  negative, so output is clamped at 0;
* the paper's prose anchor "a start/stop rate of 10 per day would add
  0.15 to the AFR" is *inconsistent* with Eq. 3 (which gives ~5.6e-4 at
  f = 10); see DESIGN.md "Known internal inconsistencies", item 2.  We
  follow the equation, not the prose.

The un-halved IDEMA curve (Fig. 4a) is recovered as exactly twice Eq. 3.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.util.units import per_month_to_per_day
from repro.util.validation import require

__all__ = [
    "EQ3_COEFFICIENTS",
    "FREQUENCY_DOMAIN_PER_DAY",
    "frequency_afr_adder_percent",
    "idema_start_stop_adder_percent",
    "FrequencyReliability",
]

#: (a, b, c) of Eq. 3: R(f) = a f**2 + b f + c, AFR percent.
EQ3_COEFFICIENTS: tuple[float, float, float] = (1.51e-5, -1.09e-4, 1.39e-4)

#: Validity domain of Eq. 3, transitions per day.
FREQUENCY_DOMAIN_PER_DAY: tuple[float, float] = (0.0, 1600.0)


def _eval_quadratic(f: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
    a, b, c = EQ3_COEFFICIENTS
    return np.maximum(a * f * f + b * f + c, 0.0).astype(np.float64)


def frequency_afr_adder_percent(transitions_per_day: float | npt.NDArray[np.float64],
                                *, clip_domain: bool = True) -> float | npt.NDArray[np.float64]:
    """Eq. 3: AFR adder (percent) for a given daily transition frequency.

    ``clip_domain=True`` (default) clamps inputs into [0, 1600] — the
    fitted range; with ``False`` inputs beyond 1600/day raise instead of
    silently extrapolating the quadratic.
    """
    f = np.asarray(transitions_per_day, dtype=np.float64)
    require(bool(np.all(np.isfinite(f))), "frequency must be finite")
    require(bool(np.all(f >= 0.0)), "frequency must be >= 0 per day")
    lo, hi = FREQUENCY_DOMAIN_PER_DAY
    if clip_domain:
        f = np.clip(f, lo, hi)
    else:
        require(bool(np.all(f <= hi)), f"frequency beyond Eq. 3 domain [0, {hi}] per day")
    out = _eval_quadratic(f)
    if np.ndim(transitions_per_day) == 0:
        return float(out)
    return out


def idema_start_stop_adder_percent(events_per_day: float | npt.NDArray[np.float64],
                                   *, per_month: bool = False) -> float | npt.NDArray[np.float64]:
    """The extended IDEMA start/stop adder (Fig. 4a): exactly 2x Eq. 3.

    ``per_month=True`` interprets the input as events per month (IDEMA's
    native axis, [0, 350]/month in the original standard) and converts
    with the 30-day month used throughout Sec. 3.4.
    """
    rate = np.asarray(events_per_day, dtype=np.float64)
    if per_month:
        rate = per_month_to_per_day(rate)
    out = 2.0 * np.asarray(frequency_afr_adder_percent(rate), dtype=np.float64)
    if np.ndim(events_per_day) == 0:
        return float(out)
    return out


class FrequencyReliability:
    """Callable wrapper around Eq. 3 matching the other two PRESS functions.

    Examples
    --------
    >>> f = FrequencyReliability()
    >>> round(f(0.0), 6)
    0.000139
    >>> f(1600.0) > f(100.0) > f(10.0)
    True
    """

    def __init__(self) -> None:
        self._domain = FREQUENCY_DOMAIN_PER_DAY

    @property
    def domain_per_day(self) -> tuple[float, float]:
        """Fitted frequency domain, transitions per day."""
        return self._domain

    def __call__(self, transitions_per_day: float | npt.NDArray[np.float64]) -> float | npt.NDArray[np.float64]:
        """AFR adder (percent) via Eq. 3, domain-clamped."""
        return frequency_afr_adder_percent(transitions_per_day)

    def curve(self, n_points: int = 161) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
        """Sampled (freq/day, AFR %) over [0, 1600] — Fig. 4b's series."""
        require(n_points >= 2, "n_points must be >= 2")
        freqs = np.linspace(*self._domain, n_points)
        return freqs, np.asarray(self(freqs), dtype=np.float64)

    def idema_curve(self, n_points: int = 161) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
        """Sampled (events/day, AFR %) of the un-halved adder — Fig. 4a."""
        freqs, halved = self.curve(n_points)
        return freqs, 2.0 * halved
