"""The million-request-scale demonstration run (committed artifact).

Runs one 256-disk cell split into 16 shards over a streamed ten-million
request workload — the scale the streaming + sharding layer exists for —
and writes ``benchmarks/results/scale_demo_256.json`` recording the
merged physical results and the process-tree peak RSS.  The artifact is
committed so the numbers travel with the code; re-produce with:

    PYTHONPATH=src python benchmarks/scale_demo.py

Deliberately NOT named ``bench_*.py``: it is a multi-minute run and must
never be collected into a pytest session by the benchmark glob.
"""

from __future__ import annotations

import json
import resource
import sys
from pathlib import Path
from time import perf_counter

from repro.experiments.shard import run_sharded
from repro.workload.synthetic import SyntheticWorkloadConfig

N_REQUESTS = 10_000_000
N_DISKS = 256
N_SHARDS = 16
CONFIG = SyntheticWorkloadConfig(n_files=20_000, n_requests=N_REQUESTS,
                                 seed=2008, bursty=True)
ARTIFACT = Path(__file__).resolve().parent / "results" / "scale_demo_256.json"


def peak_rss_mib() -> float:
    """Lifetime peak RSS of this process and its reaped children, MiB."""
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return max(self_kb, child_kb) / 1024.0


def main(jobs: int = 1) -> int:
    start = perf_counter()
    result, _summary = run_sharded("static-high", CONFIG, n_disks=N_DISKS,
                                   n_shards=N_SHARDS, jobs=jobs)
    wall_s = perf_counter() - start
    sharding = result.policy_detail["sharding"]
    doc = {
        "what": "streamed sharded scale demo: one static-high cell",
        "n_requests": result.n_requests,
        "n_disks": result.n_disks,
        "n_shards": N_SHARDS,
        "assignment": sharding["assignment"],
        "jobs": jobs,
        "workload": {"n_files": CONFIG.n_files, "seed": CONFIG.seed,
                     "bursty": CONFIG.bursty},
        "duration_s": result.duration_s,
        "mean_response_s": result.mean_response_s,
        "p95_response_s": result.p95_response_s,
        "p99_response_s": result.p99_response_s,
        "total_energy_j": result.total_energy_j,
        "array_afr_percent": result.array_afr_percent,
        "events_executed": result.events_executed,
        "kernel_backend": result.kernel_backend,
        "wall_clock_s": round(wall_s, 1),
        "requests_per_sec": round(result.n_requests / wall_s),
        "peak_rss_mib": round(peak_rss_mib(), 1),
    }
    ARTIFACT.parent.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(doc, indent=2))
    print(f"wrote {ARTIFACT}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(jobs=int(sys.argv[1]) if len(sys.argv) > 1 else 1))
