"""Ablations over the design choices DESIGN.md documents.

* integrator combination strategy (the paper leaves the fusion rule
  unspecified — how much does the choice move the Fig. 7a conclusion?);
* READ's transition cap S (Sec. 5.2 uses S = 40);
* READ's adaptive idleness threshold (Fig. 6 line 22) on/off;
* READ's FRD migration on/off;
* the idleness threshold H for the churny baselines.
"""

from conftest import record_table
from repro.experiments.reporting import format_table
from repro.experiments.sweeps import (
    sweep_idle_threshold,
    sweep_integrator_strategies,
    sweep_read_adaptive_threshold,
    sweep_read_migration,
    sweep_read_transition_cap,
)


def _rows(results, key_label):
    rows = []
    for key, r in results.items():
        rows.append({
            key_label: key,
            "AFR_%": f"{r.array_afr_percent:.2f}",
            "energy_kJ": f"{r.total_energy_j / 1e3:.0f}",
            "mrt_ms": f"{r.mean_response_s * 1e3:.2f}",
            "transitions": r.total_transitions,
        })
    return rows


def test_integrator_strategy_ablation(benchmark, light_config):
    out = benchmark.pedantic(sweep_integrator_strategies, args=(light_config,),
                             kwargs=dict(n_disks=10), rounds=1, iterations=1)
    record_table("Ablation: PRESS integrator combination strategy (READ, 10 disks)",
                 format_table(_rows(out, "strategy")))
    # the conclusion is strategy-independent in sign: AFR ordering of the
    # strategies is the documented dominance chain
    assert out["sum"].array_afr_percent >= out["max_plus_adder"].array_afr_percent
    assert out["max_plus_adder"].array_afr_percent >= out["mean_plus_adder"].array_afr_percent


def test_read_transition_cap_ablation(benchmark, light_config):
    out = benchmark.pedantic(sweep_read_transition_cap, args=(light_config,),
                             kwargs=dict(caps=(4, 10, 40, 200), n_disks=10),
                             rounds=1, iterations=1)
    record_table("Ablation: READ transition cap S (paper uses S=40)",
                 format_table(_rows(out, "cap_S")))
    # a tighter cap can never allow more transitions
    assert out[4].total_transitions <= out[200].total_transitions


def test_read_adaptive_threshold_ablation(benchmark, light_config):
    out = benchmark.pedantic(sweep_read_adaptive_threshold, args=(light_config,),
                             kwargs=dict(n_disks=10), rounds=1, iterations=1)
    record_table("Ablation: READ adaptive idleness threshold (Fig. 6 line 22)",
                 format_table(_rows(out, "variant")))
    assert out["adaptive"].total_transitions <= out["fixed"].total_transitions


def test_read_migration_ablation(benchmark, light_config):
    out = benchmark.pedantic(sweep_read_migration, args=(light_config,),
                             kwargs=dict(n_disks=10), rounds=1, iterations=1)
    record_table("Ablation: READ File Redistribution Daemon on/off",
                 format_table(_rows(out, "variant")))
    assert out["frd_off"].internal_jobs == 0
    assert out["frd_on"].internal_jobs > 0


def test_idle_threshold_ablation(benchmark, light_config):
    out = benchmark.pedantic(sweep_idle_threshold, args=(light_config,),
                             kwargs=dict(thresholds_s=(5.0, 20.0, 120.0),
                                         policy="pdc", n_disks=10),
                             rounds=1, iterations=1)
    record_table("Ablation: PDC idleness threshold H (churn knife-edge, Sec. 5.2)",
                 format_table(_rows(out, "H_seconds")))
    assert out[120.0].total_transitions <= out[5.0].total_transitions
