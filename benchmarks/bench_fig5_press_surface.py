"""Figure 5 — the PRESS model surfaces at 40 degC and 50 degC.

The paper renders AFR as a function of (utilization, transition
frequency) at the two operating temperatures; we print a coarse grid of
each surface and check the 50 degC panel dominates the 40 degC panel."""

import numpy as np

from conftest import record_table
from repro.experiments.figures import figure5_surface
from repro.experiments.reporting import format_table
from repro.press.model import PRESSModel


def _surface_table(temp_c: float) -> str:
    utils, freqs, surface = figure5_surface(temp_c, n_util=4, n_freq=5)
    rows = []
    for i, u in enumerate(utils):
        row = {"util_%": f"{u:.0f}"}
        for j, f in enumerate(freqs):
            row[f"f={f:.0f}/d"] = f"{surface[i, j]:.2f}"
        rows.append(row)
    return format_table(rows, title=f"PRESS AFR % at {temp_c:.0f} degC")


def test_fig5_surfaces(benchmark):
    def both():
        return (figure5_surface(40.0, n_util=16, n_freq=17),
                figure5_surface(50.0, n_util=16, n_freq=17))

    (_, _, s40), (_, _, s50) = benchmark.pedantic(both, rounds=1, iterations=1)
    assert np.all(s50 > s40)
    record_table("Figure 5a: PRESS surface at 40 degC", _surface_table(40.0))
    record_table("Figure 5b: PRESS surface at 50 degC", _surface_table(50.0))


def test_press_point_eval_throughput(benchmark):
    """Per-disk scoring throughput (the end-of-run evaluation path)."""
    press = PRESSModel()
    rng = np.random.default_rng(0)
    points = list(zip(rng.uniform(35, 50, 500), rng.uniform(0, 100, 500),
                      rng.uniform(0, 1600, 500)))

    def score_all():
        return [press.disk_afr(t, u, f) for t, u, f in points]

    out = benchmark(score_all)
    assert len(out) == 500
