"""Throughput regression gate over the committed ``BENCH_throughput.json``.

``compare()`` is a pure function over two result dicts so the tier-1
tests can exercise the gate logic without re-measuring anything;
``main()`` wires it to the files ``bench_throughput.py`` writes:

    PYTHONPATH=src python benchmarks/check_regression.py

exits non-zero (and prints why) if the freshest measurement in
``benchmarks/results/throughput.json`` regressed more than 20% against
the committed baseline.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Committed reference numbers (repo root, updated when perf work lands).
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
#: Fresh measurement written by bench_throughput.py.
RESULTS_PATH = Path(__file__).resolve().parent / "results" / "throughput.json"

#: Allowed relative slowdown before the gate fails.
DEFAULT_THRESHOLD = 0.20

#: Allowed wall-clock ratio of a traced run over the same run with
#: telemetry off.  JSON-serializing every event to a file measures
#: around 4x on the reference cell; beyond 5x something pathological
#: has leaked into the emission path.
MAX_TRACING_OVERHEAD = 5.0

#: Same guard for one *sharded* cell (16 disks / 4 shards).  Tracing a
#: sharded cell additionally forces every shard kernel off the SoA fast
#: path onto object dispatch and k-way-merges the segments, so the
#: measured ratio sits near 10x; beyond 14x the emission-time remapping
#: or the streaming merge has grown pathological work.
MAX_SHARD_TRACING_OVERHEAD = 14.0

#: Hard floor on the batched (SoA) kernel rate: 3x the object-path
#: kernel's committed 1.07M events/sec.  Unlike the relative threshold
#: below, this is an absolute gate — the vectorized kernel must never
#: drift back toward per-object dispatch speed.
FLOOR_KERNEL_EVENTS_PER_SEC = 3_220_000

#: Hard floor on the streamed sharded dispatch rate (requests/sec end to
#: end: chunked generation + filtered dispatch + per-shard kernels +
#: merge, serial).  Committed measurements sit around 60-70k on the
#: reference host; the floor is set far below that so only a structural
#: slowdown (e.g. the stream path accidentally materializing, or
#: per-request overhead creeping into the chunk loop) can trip it.
FLOOR_STREAM_REQUESTS_PER_SEC = 15_000

#: Absolute ceiling on merging one 64-disk / 16-shard cell.  Measured
#: around 2 ms; the ceiling is two orders above because ms-scale timers
#: swing with host load, but a merge that takes a large fraction of a
#: second means the fixed-order reduction grew accidental O(n^2) work.
MAX_SHARD_MERGE_S = 0.25

#: metric name -> True if higher is better.  ``cell_obs_off_s`` is the
#: obs-disabled guard: the telemetry hooks must not slow the default
#: (no-subscriber) path beyond the ordinary threshold.
#: ``kernel_events_per_sec`` is the batched SoA kernel (per-disk lane
#: updates drained through :class:`~repro.sim.soa.BatchTicker`);
#: ``kernel_events_per_sec_object`` is the object-dispatch kernel
#: (self-rescheduling tick through the event heap).
_METRICS = {
    "kernel_events_per_sec": True,
    "kernel_events_per_sec_object": True,
    "sweep8_serial_s": False,
    "sweep8_jobs4_s": False,
    "cell_obs_off_s": False,
    "cell_traced_s": False,
    "rebuild_cell_s": False,
    "stream_requests_per_sec": True,
    "shard_merge_s": False,
    "shard_obs_off_s": False,
    "shard_traced_s": False,
}


def compare(current: dict, baseline: dict, *,
            threshold: float = DEFAULT_THRESHOLD) -> list[str]:
    """Return one message per metric that regressed beyond ``threshold``.

    An empty list means the gate passes.  Metrics missing from either
    dict are skipped (new benches should not fail old baselines and
    vice versa); non-finite or non-positive baselines are skipped too.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold!r}")
    problems: list[str] = []
    for metric, higher_is_better in _METRICS.items():
        if metric not in current or metric not in baseline:
            continue
        cur = float(current[metric])
        base = float(baseline[metric])
        if not base > 0.0 or cur != cur or base != base:
            continue
        if higher_is_better:
            loss = (base - cur) / base
        else:
            loss = (cur - base) / base
        if loss > threshold:
            problems.append(
                f"{metric}: {cur:g} vs baseline {base:g} "
                f"({loss * 100.0:.1f}% worse, limit {threshold * 100.0:.0f}%)")
    return problems


def tracing_overhead(current: dict, *,
                     max_ratio: float = MAX_TRACING_OVERHEAD,
                     max_shard_ratio: float = MAX_SHARD_TRACING_OVERHEAD,
                     ) -> list[str]:
    """Check the traced/untraced wall-clock ratios within one measurement.

    Unlike :func:`compare` this needs no baseline — both numbers of each
    pair come from the same run on the same machine, so the ratio is
    free of host-speed noise.  A pair whose measurement is missing or
    non-positive is skipped (the check cannot run).
    """
    if not max_ratio > 1.0:
        raise ValueError(f"max_ratio must be > 1, got {max_ratio!r}")
    if not max_shard_ratio > 1.0:
        raise ValueError(f"max_shard_ratio must be > 1, got {max_shard_ratio!r}")
    pairs = (
        ("cell_obs_off_s", "cell_traced_s", "tracing overhead", max_ratio),
        ("shard_obs_off_s", "shard_traced_s", "shard tracing overhead",
         max_shard_ratio),
    )
    problems: list[str] = []
    for off_key, traced_key, label, limit in pairs:
        off = float(current.get(off_key, 0.0) or 0.0)
        traced = float(current.get(traced_key, 0.0) or 0.0)
        if not (off > 0.0 and traced > 0.0):
            continue
        ratio = traced / off
        if ratio > limit:
            problems.append(f"{label}: {traced:g}s traced vs {off:g}s off "
                            f"({ratio:.2f}x, limit {limit:g}x)")
    return problems


def kernel_floor(current: dict, *,
                 floor: float = FLOOR_KERNEL_EVENTS_PER_SEC) -> list[str]:
    """Absolute floor on the batched kernel rate (3x the object path).

    Returns an empty list when the metric is absent (old result files)
    — the relative :func:`compare` gate still applies to those.
    """
    if not floor > 0.0:
        raise ValueError(f"floor must be > 0, got {floor!r}")
    if "kernel_events_per_sec" not in current:
        return []
    rate = float(current["kernel_events_per_sec"])
    if rate < floor:
        return [f"kernel floor: {rate:g} events/sec below the "
                f"{floor:g} absolute floor (3x object path)"]
    return []


def stream_floor(current: dict, *,
                 floor: float = FLOOR_STREAM_REQUESTS_PER_SEC,
                 merge_ceiling: float = MAX_SHARD_MERGE_S) -> list[str]:
    """Absolute gates on the streamed sharded path.

    Both checks skip silently when their metric is absent (old result
    files); the relative :func:`compare` gate still applies.
    """
    if not floor > 0.0:
        raise ValueError(f"floor must be > 0, got {floor!r}")
    if not merge_ceiling > 0.0:
        raise ValueError(f"merge_ceiling must be > 0, got {merge_ceiling!r}")
    problems: list[str] = []
    if "stream_requests_per_sec" in current:
        rate = float(current["stream_requests_per_sec"])
        if rate < floor:
            problems.append(
                f"stream floor: {rate:g} requests/sec below the "
                f"{floor:g} absolute floor")
    if "shard_merge_s" in current:
        merge_s = float(current["shard_merge_s"])
        if merge_s > merge_ceiling:
            problems.append(
                f"shard merge: {merge_s:g}s above the "
                f"{merge_ceiling:g}s absolute ceiling (64 disks, 16 shards)")
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    results_path = Path(args[0]) if args else RESULTS_PATH
    if not results_path.exists():
        print(f"no results at {results_path}; run "
              f"PYTHONPATH=src python -m pytest benchmarks/bench_throughput.py first")
        return 2
    current = json.loads(results_path.read_text(encoding="utf-8"))
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    problems = (compare(current, baseline) + tracing_overhead(current)
                + kernel_floor(current) + stream_floor(current))
    if problems:
        for line in problems:
            print(f"REGRESSION {line}")
        return 1
    print(f"ok: {results_path.name} within {DEFAULT_THRESHOLD * 100.0:.0f}% "
          f"of {BASELINE_PATH.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
