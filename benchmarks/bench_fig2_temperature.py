"""Figure 2b — the temperature-reliability function.

Regenerates the AFR-vs-temperature series the paper digitizes from the
Google 3-year-old field data, and benchmarks curve evaluation (the
function sits on PRESS's per-disk scoring path).
"""

import numpy as np

from conftest import record_table
from repro.experiments.figures import figure2b_series
from repro.experiments.reporting import format_series
from repro.press.temperature import TemperatureReliability


def test_fig2b_series(benchmark):
    temps, afrs = benchmark.pedantic(figure2b_series, args=(26,),
                                     rounds=1, iterations=1)
    assert np.all(np.diff(afrs) >= -1e-12)
    record_table(
        "Figure 2b: temperature-reliability function (AFR % vs degC)",
        format_series(temps[::5], {"AFR_%": afrs[::5]}, x_label="degC",
                      title="3-year-old population anchors, PCHIP interpolation"),
    )


def test_temperature_eval_throughput(benchmark):
    """Vectorized evaluation speed over a realistic batch of disks."""
    f = TemperatureReliability()
    temps = np.random.default_rng(0).uniform(25, 50, 10_000)
    out = benchmark(f, temps)
    assert out.shape == temps.shape
