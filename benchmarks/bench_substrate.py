"""Substrate microbenchmarks: kernel, drive, workload generator.

Performance-regression guards for the hot paths (the project guides'
"measure first" rule) — these are the only benches where wall-clock is
the deliverable rather than a reproduction table.
"""

import numpy as np

from repro.disk.drive import Job, TwoSpeedDrive
from repro.disk.parameters import cheetah_two_speed
from repro.sim.engine import Simulator
from repro.workload.synthetic import SyntheticWorkloadConfig, WorldCupLikeWorkload
from repro.workload.zipf import zipf_sample_ranks


def test_event_loop_throughput(benchmark):
    """Dispatch rate of the bare kernel (schedule + run 50k events)."""

    def run_events():
        sim = Simulator()
        for i in range(50_000):
            sim.schedule(float(i) * 1e-3, lambda: None)
        sim.run()
        return sim.events_executed

    assert benchmark(run_events) == 50_000


def test_drive_service_throughput(benchmark):
    """Jobs/second through one drive's full state machine."""
    params = cheetah_two_speed()

    def run_jobs():
        sim = Simulator()
        drive = TwoSpeedDrive(sim, params, 0)
        for i in range(10_000):
            sim.schedule(float(i) * 0.05, (lambda d=drive: d.submit(
                Job.internal_transfer(0.5))))
        sim.run()
        drive.finalize()
        return drive.stats.internal_jobs_served

    assert benchmark(run_jobs) == 10_000


def test_zipf_sampling_throughput(benchmark):
    out = benchmark(zipf_sample_ranks, 4079, 0.8, 100_000, 1)
    assert out.size == 100_000


def test_trace_generation_throughput(benchmark):
    cfg = SyntheticWorkloadConfig(n_files=4079, n_requests=100_000, seed=1)

    def generate():
        return WorldCupLikeWorkload(cfg).generate()

    fileset, trace = benchmark(generate)
    assert len(trace) == 100_000


def test_press_array_scoring(benchmark):
    """End-of-run evaluation of a 16-disk array (PRESS path)."""
    from repro.disk.array import DiskArray
    from repro.press.model import PRESSModel
    from repro.workload.files import FileSet

    params = cheetah_two_speed()
    press = PRESSModel()
    sim = Simulator()
    array = DiskArray(sim, params, 16, FileSet(np.ones(100)))
    sim.schedule(1000.0, lambda: None)
    sim.run()

    def score():
        return press.evaluate_array(array, 1000.0)

    afr, factors = benchmark(score)
    assert len(factors) == 16
