"""All scheme categories side by side (beyond the paper's Fig. 7).

Section 2 taxonomizes energy-conservation schemes: power management
(DRPM, Hibernator), workload skew (MAID, PDC), and the paper's
reliability-aware hybrid (READ).  The paper only evaluates the skew
family; this bench puts a representative of *every* category on the same
trace and scores all of them with PRESS — the comparison the paper's
taxonomy implies but never runs.
"""

from conftest import record_table
from repro.experiments.reporting import format_table
from repro.experiments.runner import make_policy, run_simulation

CATEGORY = {
    "static-high": "no management",
    "read": "reliability-aware skew (the paper)",
    "maid": "workload skew (cache disks)",
    "pdc": "workload skew (concentration)",
    "drpm": "power mgmt (fine-grain watermarks)",
    "hibernator": "power mgmt (coarse-grain model-driven)",
}


def test_all_scheme_categories(benchmark, light_config):
    fileset, trace = light_config.generate()

    def run_all():
        return {name: run_simulation(make_policy(name), fileset, trace,
                                     n_disks=10, disk_params=light_config.disk_params)
                for name in CATEGORY}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, r in results.items():
        rows.append({
            "scheme": name,
            "category": CATEGORY[name],
            "AFR_%": f"{r.array_afr_percent:.2f}",
            "energy_kJ": f"{r.total_energy_j / 1e3:.0f}",
            "mrt_ms": f"{r.mean_response_s * 1e3:.2f}",
            "transitions": r.total_transitions,
        })
    record_table("Beyond Fig. 7: every Sec. 2 scheme category on one trace "
                 "(10 disks, light)", format_table(rows))

    # READ beats its own (workload-skew) family on AFR — the paper's claim
    read = results["read"]
    assert read.array_afr_percent <= results["maid"].array_afr_percent + 1e-9
    assert read.array_afr_percent <= results["pdc"].array_afr_percent + 1e-9
    # ...while saving energy vs the unmanaged array
    assert read.total_energy_j < results["static-high"].total_energy_j
    # the power-management schemes occupy a different corner: when load
    # is light they park at LOW — cooler (potentially *lower* AFR) and
    # cheaper, but at a real response-time cost READ does not pay
    for pm in ("drpm", "hibernator"):
        assert results[pm].mean_response_s > read.mean_response_s * 0.9
