"""Kernel and sweep throughput — the perf trajectory the ROADMAP tracks.

The measurements, fixed-scale regardless of ``REPRO_BENCH_SCALE`` so
the numbers stay comparable across commits:

* batched kernel events/sec — a 1024-disk :class:`~repro.disk.state.ArrayState`
  advanced by a :class:`~repro.sim.soa.BatchTicker`, counting per-disk
  lane updates per wall-clock second, best of three;
* object kernel events/sec — a self-rescheduling tick drained through
  :meth:`~repro.sim.engine.Simulator.run_until_drained`, best of three
  (the pre-SoA dispatch path, kept as its own regression metric);
* the 8-cell Fig. 7-style sweep (read, maid x 6..12 disks) through
  :func:`~repro.experiments.parallel.run_cells`, serial and ``jobs=4``;
* one sweep cell (read x 8 disks) with telemetry off and with full
  event tracing to a JSONL file, guarding both the obs-disabled hot
  path and the tracing-on overhead ratio;
* one sharded cell (16 disks / 4 shards) with telemetry off and with
  per-shard trace segments merged into one canonical trace, guarding
  the shard tracing-overhead ratio (the sharded pair additionally
  crosses the SoA->object backend switch, so it has its own cap);
* one fault-injected redundancy cell (read x 8 disks, ``block4-2``,
  accelerated hazard) exercising the degraded-read reconstruct fan-in
  and rebuild fan-out paths end to end, guarding the per-request cost
  of the redundancy-group machinery.

The committed reference numbers live in ``BENCH_throughput.json`` at the
repo root; each run writes its fresh measurement to
``benchmarks/results/throughput.json`` and ``check_regression.py``
compares the two (>20% events/sec drop fails, and the batched rate has
an absolute floor of 3x the object path's committed 1.07M).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from time import perf_counter

import numpy as np

from conftest import RESULTS_DIR, record_table
from check_regression import (BASELINE_PATH, compare, kernel_floor,
                              stream_floor, tracing_overhead)
from repro.disk.parameters import cheetah_two_speed
from repro.disk.state import ArrayState
from repro.experiments.parallel import RunSpec, run_cells
from repro.obs import ObsConfig
from repro.sim.engine import Simulator
from repro.sim.soa import BatchTicker
from repro.workload.synthetic import SyntheticWorkloadConfig

#: Event count for the kernel microbenchmark (large enough that the
#: per-run Simulator setup is noise).
KERNEL_EVENTS = 300_000
KERNEL_REPEATS = 3

#: Scale of the batched-kernel microbenchmark: a MAID-scale array
#: (the regime the SoA layout exists for — per-tick Python overhead
#: amortizes across lanes), enough ticks that per-run setup is noise
#: (1024 * 2_500 = 2.56M lane updates per repeat).
BATCH_DISKS = 1024
BATCH_TICKS = 2_500

#: The 8-cell sweep: two trace-driven policies across four array sizes,
#: one shared workload (exercises the cache + executor end to end).
SWEEP_POLICIES = ("read", "maid")
SWEEP_DISK_COUNTS = (6, 8, 10, 12)
SWEEP_WORKLOAD = SyntheticWorkloadConfig(n_files=1_000, n_requests=30_000,
                                         seed=7, bursty=True)

#: The streamed/sharded measurement: one 16-disk cell split into 4
#: shards, run serially over the chunked (never-materialized) workload.
STREAM_WORKLOAD = SyntheticWorkloadConfig(n_files=2_000, n_requests=100_000,
                                          seed=7, bursty=True)
STREAM_DISKS = 16
STREAM_SHARDS = 4

#: The merge measurement: fixed-order reduction of a 64-disk cell's 16
#: shard partials into one SimulationResult.
MERGE_DISKS = 64
MERGE_SHARDS = 16

#: The redundancy measurement: one fault-injected block4-2 cell whose
#: accelerated hazard drives many requests through degraded-read
#: reconstruction (k-leg fan-in) and rebuilds through survivor fan-out.
REBUILD_DISKS = 8
REBUILD_FAULTS_SPEC = "seed=3,accel=200000"
REBUILD_SCHEME = "block4-2"


def measure_batch_events_per_sec(n_disks: int = BATCH_DISKS,
                                 n_ticks: int = BATCH_TICKS,
                                 repeats: int = KERNEL_REPEATS) -> float:
    """Best-of-N per-disk lane updates/sec for the batched SoA kernel.

    Drives a fluid-approximation :meth:`ArrayState.batch_step` through a
    :class:`BatchTicker` with a fixed per-disk arrival field — the
    whole-array analogue of one service event per disk per tick, so the
    rate is directly comparable to the object kernel's events/sec.
    """
    params = cheetah_two_speed()
    rng = np.random.default_rng(7)
    arrivals = rng.random(n_disks) * 2.0
    best = 0.0
    for _ in range(repeats):
        sim = Simulator()
        state = ArrayState(n_disks, params)
        ticker = BatchTicker(sim, n_disks,
                             lambda dt: state.batch_step(dt, arrivals),
                             interval_s=1.0, max_ticks=n_ticks)
        ticker.start()
        start = perf_counter()
        sim.run_until_drained()
        rate = ticker.lane_updates / (perf_counter() - start)
        best = max(best, rate)
    return best


def measure_kernel_events_per_sec(n_events: int = KERNEL_EVENTS,
                                  repeats: int = KERNEL_REPEATS) -> float:
    """Best-of-N events/sec for a pure scheduling/dispatch workload."""
    best = 0.0
    for _ in range(repeats):
        sim = Simulator()
        remaining = n_events

        def tick() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining > 0:
                sim.schedule(1e-3, tick)

        sim.schedule(0.0, tick)
        start = perf_counter()
        sim.run_until_drained()
        rate = n_events / (perf_counter() - start)
        best = max(best, rate)
    return best


def sweep_specs() -> list[RunSpec]:
    return [RunSpec(policy=name, n_disks=n, workload=SWEEP_WORKLOAD)
            for name in SWEEP_POLICIES for n in SWEEP_DISK_COUNTS]


def measure_sweep_s(jobs: int, repeats: int = 2) -> float:
    """Best-of-N wall-clock for the 8-cell sweep at the given parallelism."""
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        run_cells(sweep_specs(), jobs=jobs)
        best = min(best, perf_counter() - start)
    return best


def measure_cell_s(obs: ObsConfig | None = None, repeats: int = 2) -> float:
    """Best-of-N wall-clock for one sweep cell (read x 8 disks)."""
    best = float("inf")
    for _ in range(repeats):
        spec = RunSpec(policy="read", n_disks=8, workload=SWEEP_WORKLOAD,
                       obs=obs)
        start = perf_counter()
        run_cells([spec], jobs=1)
        best = min(best, perf_counter() - start)
    return best


def measure_rebuild_cell_s(repeats: int = 2) -> float:
    """Best-of-N wall-clock for the fault-injected redundancy cell.

    The accelerated hazard fails several disks during the run, so a
    large fraction of the trace is served through the k-leg reconstruct
    fan-in while rebuild read legs stream across the survivors — the
    most expensive request path the fault layer has."""
    from repro.faults import parse_faults_spec
    from repro.redundancy import parse_redundancy_spec

    faults = parse_faults_spec(REBUILD_FAULTS_SPEC)
    scheme = parse_redundancy_spec(REBUILD_SCHEME)
    best = float("inf")
    for _ in range(repeats):
        spec = RunSpec(policy="read", n_disks=REBUILD_DISKS,
                       workload=SWEEP_WORKLOAD, faults=faults,
                       redundancy=scheme)
        start = perf_counter()
        run_cells([spec], jobs=1)
        best = min(best, perf_counter() - start)
    return best


def measure_stream_requests_per_sec(repeats: int = 2) -> float:
    """Best-of-N requests/sec through the streamed sharded path, end to
    end: chunked generation, filtered per-shard dispatch, SoA kernels,
    open-ledger capture, and the fixed-order merge — all serial."""
    from repro.experiments.shard import run_sharded

    best = 0.0
    for _ in range(repeats):
        start = perf_counter()
        result, _summary = run_sharded("static-high", STREAM_WORKLOAD,
                                       n_disks=STREAM_DISKS,
                                       n_shards=STREAM_SHARDS)
        rate = result.n_requests / (perf_counter() - start)
        best = max(best, rate)
    return best


def measure_shard_cell_s(traced: bool, repeats: int = 2) -> float:
    """Best-of-N wall-clock for one sharded cell (16 disks / 4 shards),
    with telemetry off or with per-shard trace segments plus the k-way
    merge into one canonical trace (end to end, like ``sweep --shards``
    with ``--trace-out``)."""
    from repro.experiments.shard import run_sharded

    best = float("inf")
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as td:
            obs = (ObsConfig(trace_path=str(Path(td) / "trace.jsonl"))
                   if traced else None)
            start = perf_counter()
            run_sharded("static-high", STREAM_WORKLOAD,
                        n_disks=STREAM_DISKS, n_shards=STREAM_SHARDS,
                        obs=obs)
            best = min(best, perf_counter() - start)
    return best


def measure_shard_merge_s(repeats: int = 3) -> float:
    """Best-of-N wall-clock for merging one 64-disk / 16-shard cell.

    The shard partials are produced once outside the timer; only
    :func:`~repro.experiments.shard.merge_shard_results` — ledger closes
    at the global horizon, PRESS re-scoring, fixed-order reductions —
    is measured."""
    from repro.experiments.parallel import run_cell
    from repro.experiments.shard import (ShardCellSpec, ShardPlan,
                                         merge_shard_results)

    plan = ShardPlan(n_disks=MERGE_DISKS, n_shards=MERGE_SHARDS)
    partials = [run_cell(RunSpec(policy="static-high", n_disks=MERGE_DISKS,
                                 workload=STREAM_WORKLOAD,
                                 shard=ShardCellSpec(plan, s)))
                for s in range(MERGE_SHARDS)]
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        merge_shard_results(partials)
        best = min(best, perf_counter() - start)
    return best


def _write_results(results: dict) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "throughput.json"
    path.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    return path


def test_throughput(benchmark):
    batch_events_per_sec = measure_batch_events_per_sec()
    object_events_per_sec = measure_kernel_events_per_sec()
    serial_s = measure_sweep_s(jobs=1)
    jobs4_s = measure_sweep_s(jobs=4)
    cell_obs_off_s = measure_cell_s()
    with tempfile.TemporaryDirectory() as td:
        cell_traced_s = measure_cell_s(
            ObsConfig(trace_path=str(Path(td) / "trace.jsonl")))
    rebuild_cell_s = measure_rebuild_cell_s()
    stream_rps = measure_stream_requests_per_sec()
    shard_merge_s = measure_shard_merge_s()
    shard_obs_off_s = measure_shard_cell_s(traced=False)
    shard_traced_s = measure_shard_cell_s(traced=True)
    benchmark.pedantic(lambda: batch_events_per_sec, rounds=1, iterations=1)

    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    current = {
        "kernel_events_per_sec": round(batch_events_per_sec),
        "kernel_events_per_sec_object": round(object_events_per_sec),
        "sweep8_serial_s": round(serial_s, 3),
        "sweep8_jobs4_s": round(jobs4_s, 3),
        "cell_obs_off_s": round(cell_obs_off_s, 3),
        "cell_traced_s": round(cell_traced_s, 3),
        "rebuild_cell_s": round(rebuild_cell_s, 3),
        "stream_requests_per_sec": round(stream_rps),
        "shard_merge_s": round(shard_merge_s, 4),
        "shard_obs_off_s": round(shard_obs_off_s, 3),
        "shard_traced_s": round(shard_traced_s, 3),
    }
    _write_results(current)

    seed = baseline.get("seed", {})
    lines = [
        f"{'measurement':<28}{'current':>12}{'committed':>12}{'seed':>12}",
        f"{'batch kernel events/sec':<28}{batch_events_per_sec:>12,.0f}"
        f"{baseline['kernel_events_per_sec']:>12,.0f}"
        f"{seed.get('kernel_events_per_sec', float('nan')):>12,.0f}",
        f"{'object kernel events/sec':<28}{object_events_per_sec:>12,.0f}"
        f"{baseline.get('kernel_events_per_sec_object', float('nan')):>12,.0f}"
        f"{seed.get('kernel_events_per_sec_object', float('nan')):>12,.0f}",
        f"{'8-cell sweep, serial [s]':<28}{serial_s:>12.2f}"
        f"{baseline['sweep8_serial_s']:>12.2f}"
        f"{seed.get('sweep8_serial_s', float('nan')):>12.2f}",
        f"{'8-cell sweep, jobs=4 [s]':<28}{jobs4_s:>12.2f}"
        f"{baseline.get('sweep8_jobs4_s', float('nan')):>12.2f}"
        f"{'':>12}",
        f"{'1 cell, telemetry off [s]':<28}{cell_obs_off_s:>12.2f}"
        f"{baseline.get('cell_obs_off_s', float('nan')):>12.2f}"
        f"{'':>12}",
        f"{'1 cell, traced [s]':<28}{cell_traced_s:>12.2f}"
        f"{baseline.get('cell_traced_s', float('nan')):>12.2f}"
        f"{'':>12}",
        f"{'1 cell, block4-2 faults [s]':<28}{rebuild_cell_s:>12.2f}"
        f"{baseline.get('rebuild_cell_s', float('nan')):>12.2f}"
        f"{'':>12}",
        f"{'streamed shard req/sec':<28}{stream_rps:>12,.0f}"
        f"{baseline.get('stream_requests_per_sec', float('nan')):>12,.0f}"
        f"{'':>12}",
        f"{'64d/16s merge [ms]':<28}{shard_merge_s * 1e3:>12.2f}"
        f"{baseline.get('shard_merge_s', float('nan')) * 1e3:>12.2f}"
        f"{'':>12}",
        f"{'16d/4s cell, obs off [s]':<28}{shard_obs_off_s:>12.2f}"
        f"{baseline.get('shard_obs_off_s', float('nan')):>12.2f}"
        f"{'':>12}",
        f"{'16d/4s cell, traced [s]':<28}{shard_traced_s:>12.2f}"
        f"{baseline.get('shard_traced_s', float('nan')):>12.2f}"
        f"{'':>12}",
    ]
    record_table("Throughput: event kernel and 8-cell sweep", "\n".join(lines))

    regressions = (compare(current, baseline) + tracing_overhead(current)
                   + kernel_floor(current) + stream_floor(current))
    assert not regressions, "; ".join(regressions)
    # Acceptance (SoA kernel): the batched rate beats the object path's
    # committed rate by >= 3x on the same host, same run.
    assert batch_events_per_sec >= 3.0 * baseline["kernel_events_per_sec_object"]
    # Acceptance: the sweep beats the pre-optimization (seed) serial
    # wall-clock by >= 1.5x — on multi-core via the process pool, on a
    # single core via the kernel/hot-path work alone.  (The margin was
    # ~2.2x when first committed; the floor sits at 1.5x because the
    # reference host's speed swings ~20% between sessions and the seed
    # measurement cannot be re-taken at matched host speed.)
    if "sweep8_serial_s" in seed:
        assert min(serial_s, jobs4_s) <= seed["sweep8_serial_s"] / 1.5
