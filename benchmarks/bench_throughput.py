"""Kernel and sweep throughput — the perf trajectory the ROADMAP tracks.

Two measurements, fixed-scale regardless of ``REPRO_BENCH_SCALE`` so the
numbers stay comparable across commits:

* kernel events/sec — a self-rescheduling tick drained through
  :meth:`~repro.sim.engine.Simulator.run_until_drained`, best of three;
* the 8-cell Fig. 7-style sweep (read, maid x 6..12 disks) through
  :func:`~repro.experiments.parallel.run_cells`, serial and ``jobs=4``;
* one sweep cell (read x 8 disks) with telemetry off and with full
  event tracing to a JSONL file, guarding both the obs-disabled hot
  path and the tracing-on overhead ratio.

The committed reference numbers live in ``BENCH_throughput.json`` at the
repo root; each run writes its fresh measurement to
``benchmarks/results/throughput.json`` and ``check_regression.py``
compares the two (>20% events/sec drop fails).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from time import perf_counter

from conftest import RESULTS_DIR, record_table
from check_regression import BASELINE_PATH, compare, tracing_overhead
from repro.experiments.parallel import RunSpec, run_cells
from repro.obs import ObsConfig
from repro.sim.engine import Simulator
from repro.workload.synthetic import SyntheticWorkloadConfig

#: Event count for the kernel microbenchmark (large enough that the
#: per-run Simulator setup is noise).
KERNEL_EVENTS = 300_000
KERNEL_REPEATS = 3

#: The 8-cell sweep: two trace-driven policies across four array sizes,
#: one shared workload (exercises the cache + executor end to end).
SWEEP_POLICIES = ("read", "maid")
SWEEP_DISK_COUNTS = (6, 8, 10, 12)
SWEEP_WORKLOAD = SyntheticWorkloadConfig(n_files=1_000, n_requests=30_000,
                                         seed=7, bursty=True)


def measure_kernel_events_per_sec(n_events: int = KERNEL_EVENTS,
                                  repeats: int = KERNEL_REPEATS) -> float:
    """Best-of-N events/sec for a pure scheduling/dispatch workload."""
    best = 0.0
    for _ in range(repeats):
        sim = Simulator()
        remaining = n_events

        def tick() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining > 0:
                sim.schedule(1e-3, tick)

        sim.schedule(0.0, tick)
        start = perf_counter()
        sim.run_until_drained()
        rate = n_events / (perf_counter() - start)
        best = max(best, rate)
    return best


def sweep_specs() -> list[RunSpec]:
    return [RunSpec(policy=name, n_disks=n, workload=SWEEP_WORKLOAD)
            for name in SWEEP_POLICIES for n in SWEEP_DISK_COUNTS]


def measure_sweep_s(jobs: int, repeats: int = 2) -> float:
    """Best-of-N wall-clock for the 8-cell sweep at the given parallelism."""
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        run_cells(sweep_specs(), jobs=jobs)
        best = min(best, perf_counter() - start)
    return best


def measure_cell_s(obs: ObsConfig | None = None, repeats: int = 2) -> float:
    """Best-of-N wall-clock for one sweep cell (read x 8 disks)."""
    best = float("inf")
    for _ in range(repeats):
        spec = RunSpec(policy="read", n_disks=8, workload=SWEEP_WORKLOAD,
                       obs=obs)
        start = perf_counter()
        run_cells([spec], jobs=1)
        best = min(best, perf_counter() - start)
    return best


def _write_results(results: dict) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "throughput.json"
    path.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    return path


def test_throughput(benchmark):
    events_per_sec = measure_kernel_events_per_sec()
    serial_s = measure_sweep_s(jobs=1)
    jobs4_s = measure_sweep_s(jobs=4)
    cell_obs_off_s = measure_cell_s()
    with tempfile.TemporaryDirectory() as td:
        cell_traced_s = measure_cell_s(
            ObsConfig(trace_path=str(Path(td) / "trace.jsonl")))
    benchmark.pedantic(lambda: events_per_sec, rounds=1, iterations=1)

    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    current = {
        "kernel_events_per_sec": round(events_per_sec),
        "sweep8_serial_s": round(serial_s, 3),
        "sweep8_jobs4_s": round(jobs4_s, 3),
        "cell_obs_off_s": round(cell_obs_off_s, 3),
        "cell_traced_s": round(cell_traced_s, 3),
    }
    _write_results(current)

    seed = baseline.get("seed", {})
    lines = [
        f"{'measurement':<28}{'current':>12}{'committed':>12}{'seed':>12}",
        f"{'kernel events/sec':<28}{events_per_sec:>12,.0f}"
        f"{baseline['kernel_events_per_sec']:>12,.0f}"
        f"{seed.get('kernel_events_per_sec', float('nan')):>12,.0f}",
        f"{'8-cell sweep, serial [s]':<28}{serial_s:>12.2f}"
        f"{baseline['sweep8_serial_s']:>12.2f}"
        f"{seed.get('sweep8_serial_s', float('nan')):>12.2f}",
        f"{'8-cell sweep, jobs=4 [s]':<28}{jobs4_s:>12.2f}"
        f"{baseline.get('sweep8_jobs4_s', float('nan')):>12.2f}"
        f"{'':>12}",
        f"{'1 cell, telemetry off [s]':<28}{cell_obs_off_s:>12.2f}"
        f"{baseline.get('cell_obs_off_s', float('nan')):>12.2f}"
        f"{'':>12}",
        f"{'1 cell, traced [s]':<28}{cell_traced_s:>12.2f}"
        f"{baseline.get('cell_traced_s', float('nan')):>12.2f}"
        f"{'':>12}",
    ]
    record_table("Throughput: event kernel and 8-cell sweep", "\n".join(lines))

    regressions = compare(current, baseline) + tracing_overhead(current)
    assert not regressions, "; ".join(regressions)
    # Acceptance: the sweep beats the pre-optimization (seed) serial
    # wall-clock by >= 2x at jobs=4 — on multi-core via the process pool,
    # on a single core via the kernel/hot-path work alone.
    if "sweep8_serial_s" in seed:
        assert min(serial_s, jobs4_s) <= seed["sweep8_serial_s"] / 2.0
