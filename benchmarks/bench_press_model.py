"""Section 3.4 constants — the Coffin-Manson/Arrhenius derivation.

Reproduces the paper's printed chain: G(T_max)/A, N'_f, the ~2x ratio
("a speed transition does ~50% of a start/stop's damage"), and the
65-transitions/day warranty bound, with the documented A*A0 erratum."""

import pytest

from conftest import record_table
from repro.experiments.reporting import format_table
from repro.press.coffin_manson import paper_calibration


def test_sec_3_4_constants(benchmark):
    cal = benchmark.pedantic(paper_calibration, rounds=1, iterations=1)

    rows = [
        {"quantity": "G(50C)/A", "paper": "3.2275e-20",
         "measured": f"{cal.g_over_a_at_50c:.4e}"},
        {"quantity": "N_f (start/stop limit)", "paper": "50000",
         "measured": f"{cal.power_cycles_to_failure:.0f}"},
        {"quantity": "N'_f (transitions to failure)", "paper": "118529",
         "measured": f"{cal.transitions_to_failure:.0f}"},
        {"quantity": "N'_f / N_f", "paper": "~2 ('roughly twice')",
         "measured": f"{cal.ratio:.3f}"},
        {"quantity": "transition damage vs start/stop", "paper": "~0.5",
         "measured": f"{cal.damage_ratio:.3f}"},
        {"quantity": "max transitions/day (5-yr warranty)", "paper": "65",
         "measured": f"{cal.max_transitions_per_day:.1f}"},
        {"quantity": "A*A0", "paper": "2.564317e26 (misprint, see DESIGN.md)",
         "measured": f"{cal.model.a_a0:.4e}"},
    ]
    record_table("Section 3.4: modified Coffin-Manson calibration",
                 format_table(rows))

    assert cal.g_over_a_at_50c == pytest.approx(3.2275e-20, rel=0.01)
    assert cal.transitions_to_failure == pytest.approx(118_529, rel=0.02)
    assert cal.max_transitions_per_day == pytest.approx(65.0, abs=1.0)
