"""Figure 3b — the utilization-reliability function.

Regenerates the AFR-vs-utilization step function (4-year-old Google
population, low/medium/high buckets mapped to [25,100]%)."""

import numpy as np

from conftest import record_table
from repro.experiments.figures import figure3b_series
from repro.experiments.reporting import format_series
from repro.press.utilization import UtilizationReliability


def test_fig3b_series(benchmark):
    utils, afrs = benchmark.pedantic(figure3b_series, args=(16,),
                                     rounds=1, iterations=1)
    assert afrs[0] == 6.0 and afrs[-1] == 12.0
    record_table(
        "Figure 3b: utilization-reliability function (AFR % vs util %)",
        format_series(utils[::3], {"AFR_%": afrs[::3]}, x_label="util_%",
                      title="low [25,50)->6, medium [50,75)->8, high [75,100]->12"),
    )


def test_utilization_eval_throughput(benchmark):
    f = UtilizationReliability()
    utils = np.random.default_rng(0).uniform(0, 100, 10_000)
    out = benchmark(f, utils)
    assert out.shape == utils.shape


def test_smooth_variant_eval_throughput(benchmark):
    f = UtilizationReliability(smooth=True)
    utils = np.random.default_rng(0).uniform(0, 100, 10_000)
    out = benchmark(f, utils)
    assert out.shape == utils.shape
