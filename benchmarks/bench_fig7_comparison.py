"""Figure 7 — the READ vs MAID vs PDC evaluation (Sec. 5.2).

Regenerates all three panels (array AFR, energy, mean response time)
against array sizes 6..16 for the light and heavy workload conditions.
The absolute numbers are simulator-scale, not the authors' testbed; the
shape claims being reproduced are asserted at the bottom and summarized
against the paper in bench_headline.py / EXPERIMENTS.md.
"""

import numpy as np

from conftest import record_table
from repro.experiments.reporting import format_series


def _panels(fig7, condition: str) -> None:
    x = np.array(fig7.disk_counts, dtype=float)
    for metric, label, unit in (("afr", "array AFR", "%"),
                                ("energy", "energy", "kJ"),
                                ("response", "mean response time", "ms")):
        series = fig7.series(metric)
        if metric == "energy":
            series = {k: v / 1e3 for k, v in series.items()}
        if metric == "response":
            series = {k: v * 1e3 for k, v in series.items()}
        record_table(
            f"Figure 7 ({condition}): {label} [{unit}] vs number of disks",
            format_series(x, series, x_label="disks"),
        )


def test_fig7_light_condition(benchmark, fig7_light, scale_params):
    benchmark.pedantic(lambda: fig7_light, rounds=1, iterations=1)
    _panels(fig7_light, "light")

    afr = fig7_light.series("afr")
    energy = fig7_light.series("energy")
    mrt = fig7_light.series("response")
    # Fig. 7a shape: READ best, PDC worst, at every array size
    assert np.all(afr["read"] <= afr["maid"] + 1e-9)
    assert np.all(afr["read"] <= afr["pdc"] + 1e-9)
    assert np.mean(afr["maid"]) <= np.mean(afr["pdc"])
    # Fig. 7b shape (light): READ saves energy vs both on average
    assert energy["read"].mean() < energy["maid"].mean()
    assert energy["read"].mean() < energy["pdc"].mean()
    # Fig. 7c shape: READ delivers the shortest mean response
    assert mrt["read"].mean() < mrt["maid"].mean()
    assert mrt["read"].mean() < mrt["pdc"].mean()
    if scale_params["name"] != "smoke":
        # per-size claims need the full-length trace to be noise-free
        assert np.all(mrt["read"] <= mrt["maid"])
        assert np.all(mrt["read"] <= mrt["pdc"])


def test_fig7_heavy_condition(benchmark, fig7_heavy, scale_params):
    benchmark.pedantic(lambda: fig7_heavy, rounds=1, iterations=1)
    _panels(fig7_heavy, "heavy")

    afr = fig7_heavy.series("afr")
    mrt = fig7_heavy.series("response")
    assert np.all(afr["read"] <= afr["maid"] + 1e-9)
    assert np.all(afr["read"] <= afr["pdc"] + 1e-9)
    assert mrt["read"].mean() < mrt["pdc"].mean()
    if scale_params["name"] != "smoke":
        assert np.all(mrt["read"] <= mrt["pdc"])
