"""PRESS sensitivity — Sec. 3.5's insight ranking, quantified.

Tornado analysis of the model at the paper's operating envelope, plus
the same analysis restricted to READ's capped frequency range (showing
*why* capping transitions changes which factor an operator should worry
about next).
"""

from conftest import record_table
from repro.experiments.reporting import format_table
from repro.press.sensitivity import DEFAULT_RANGES, FactorRange, tornado


def _bar_rows(bars):
    return [{
        "factor": b.factor,
        "AFR_at_low": f"{b.afr_at_low:.2f}",
        "AFR_at_high": f"{b.afr_at_high:.2f}",
        "swing_pts": f"{b.swing:.2f}",
    } for b in bars]


def test_tornado_full_envelope(benchmark):
    bars = benchmark.pedantic(tornado, rounds=1, iterations=1)
    record_table(
        "PRESS tornado, full envelope (Sec. 3.5 insight ranking)",
        format_table(_bar_rows(bars),
                     title="base: 42.5 degC, 50% util, 40 transitions/day"))
    assert bars[0].factor == "frequency"


def test_tornado_under_read_cap(benchmark):
    ranges = dict(DEFAULT_RANGES)
    ranges["frequency"] = FactorRange(0.0, 40.0)  # READ's S

    bars = benchmark.pedantic(tornado, kwargs=dict(ranges=ranges),
                              rounds=1, iterations=1)
    record_table(
        "PRESS tornado with frequency capped at READ's S=40/day",
        format_table(_bar_rows(bars),
                     title="capping transitions demotes frequency; temperature "
                           "becomes the binding factor (PRESS insight 2)"))
    assert bars[0].factor != "frequency"
