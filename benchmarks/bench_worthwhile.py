"""The title question in dollars — "is it worthwhile?"

Compares each scheme against the no-energy-management array with the
Sec. 3.5 cost argument made explicit: annualized energy savings vs
annualized expected failure cost, under reliability-critical and
scratch-storage assumptions.
"""

from conftest import record_table
from repro.experiments.costmodel import CostAssumptions, evaluate_worthwhileness
from repro.experiments.reporting import format_table
from repro.experiments.runner import make_policy, run_simulation


def test_worthwhileness_verdicts(benchmark, light_config, scale_params):
    fileset, trace = light_config.generate()
    n_disks = 10

    def run_all():
        out = {}
        for name in ("static-high", "read", "maid", "pdc"):
            out[name] = run_simulation(make_policy(name), fileset, trace,
                                       n_disks=n_disks,
                                       disk_params=light_config.disk_params)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    reference = results["static-high"]

    assumption_sets = {
        "reliability-critical (OLTP/Web, Sec. 2)": CostAssumptions(),
        "scratch storage (no data value)": CostAssumptions(data_loss_cost_usd=0.0,
                                                           disk_replacement_usd=300.0),
    }
    rows = []
    for label, assumptions in assumption_sets.items():
        for name in ("read", "maid", "pdc"):
            verdict = evaluate_worthwhileness(results[name], reference, assumptions)
            rows.append({
                "assumptions": label,
                "scheme": name,
                "energy_$saved/yr": f"{verdict.energy_saving_usd_per_year:+.0f}",
                "failure_$cost/yr": f"{verdict.extra_failure_cost_usd_per_year:+.0f}",
                "net_$/yr": f"{verdict.net_benefit_usd_per_year:+.0f}",
                "worthwhile": verdict.worthwhile,
            })
    record_table("Title question: is the energy saving worth the reliability loss?",
                 format_table(rows))

    # the thesis: READ is worthwhile under critical assumptions; the
    # churny baselines are not
    critical = assumption_sets["reliability-critical (OLTP/Web, Sec. 2)"]
    assert evaluate_worthwhileness(results["read"], reference, critical).worthwhile
    assert not evaluate_worthwhileness(results["pdc"], reference, critical).worthwhile
