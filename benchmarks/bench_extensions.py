"""Extensions beyond the paper's evaluation (DESIGN.md Sec. 6).

* role rotation (PRESS insight 2) — does spreading hot-role tenure
  lower the worst disk's temperature, and what does it cost?
* hot-file replication (paper future work 1);
* RAID-0 striping (paper future work 2) on a media-heavy workload;
* the failure Monte Carlo downstream of PRESS: expected failures and
  data-loss probability per scheme, with and without parity redundancy.
"""

import numpy as np

from conftest import record_table
from repro.experiments.failures import simulate_failures
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentConfig, make_policy, run_simulation
from repro.workload.files import FileSet
from repro.workload.synthetic import SyntheticWorkloadConfig
from repro.workload.trace import Trace


def test_read_variants(benchmark, light_config):
    """READ vs rotating READ vs replicating READ on the light workload."""
    fileset, trace = light_config.generate()

    def run_variants():
        out = {}
        for name, kwargs in (("read", {}),
                             ("read-rotate", {"rotation_epochs": 2}),
                             ("read-replicate", {"replicate_top_k": 20})):
            out[name] = run_simulation(make_policy(name, **kwargs), fileset, trace,
                                       n_disks=10, disk_params=light_config.disk_params)
        return out

    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        temps = [f.mean_temperature_c for f in r.per_disk]
        rows.append({
            "variant": name,
            "AFR_%": f"{r.array_afr_percent:.2f}",
            "energy_kJ": f"{r.total_energy_j / 1e3:.0f}",
            "mrt_ms": f"{r.mean_response_s * 1e3:.2f}",
            "max_temp_C": f"{max(temps):.1f}",
            "temp_spread_C": f"{max(temps) - min(temps):.1f}",
            "internal_jobs": r.internal_jobs,
        })
    record_table("Extension: READ variants (rotation / replication), 10 disks",
                 format_table(rows))
    # replication must not hurt the mean response materially
    assert results["read-replicate"].mean_response_s \
        <= results["read"].mean_response_s * 1.25


def test_striping_on_media_workload(benchmark, light_config):
    """Sec. 6: striping matters for large files, not 1998 web objects."""
    rng = np.random.default_rng(0)
    # media mix: 300 clips of 4-40 MB, Zipf-accessed
    sizes = rng.uniform(4.0, 40.0, 300)
    fileset = FileSet(sizes)
    from repro.workload.zipf import zipf_sample_ranks
    n_req = 3_000
    times = np.sort(rng.uniform(0, 600.0, n_req))
    fids = zipf_sample_ranks(300, 0.8, n_req, seed=rng)
    trace = Trace(times, fids)

    def run_pair():
        striped = run_simulation(make_policy("striped-static"), fileset, trace,
                                 n_disks=8, disk_params=light_config.disk_params)
        plain = run_simulation(make_policy("static-high"), fileset, trace,
                               n_disks=8, disk_params=light_config.disk_params)
        return striped, plain

    striped, plain = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    record_table(
        "Extension: RAID-0 striping on a media workload (8 disks, 4-40 MB files)",
        format_table([
            {"policy": "striped-static (512 KB units)",
             "mrt_ms": f"{striped.mean_response_s * 1e3:.1f}",
             "p95_ms": f"{striped.p95_response_s * 1e3:.1f}"},
            {"policy": "static-high (whole files)",
             "mrt_ms": f"{plain.mean_response_s * 1e3:.1f}",
             "p95_ms": f"{plain.p95_response_s * 1e3:.1f}"},
        ]))
    assert striped.mean_response_s < plain.mean_response_s


def test_failure_monte_carlo_downstream(benchmark, light_config, scale_params):
    """From PRESS AFRs to 5-year failure and data-loss expectations."""
    fileset, trace = light_config.generate()

    def run_three():
        return {name: run_simulation(make_policy(name), fileset, trace,
                                     n_disks=10, disk_params=light_config.disk_params)
                for name in ("read", "maid", "pdc")}

    results = benchmark.pedantic(run_three, rounds=1, iterations=1)
    rows = []
    for name, r in results.items():
        afrs = [f.afr_percent for f in r.per_disk]
        bare = simulate_failures(afrs, years=5.0, n_trials=1_000,
                                 redundancy="none", seed=1)
        raid = simulate_failures(afrs, years=5.0, n_trials=1_000,
                                 redundancy="parity", repair_hours=24.0, seed=1)
        rows.append({
            "scheme": name,
            "E[failures]/5yr": f"{bare.expected_failures:.2f}",
            "P(loss) no redundancy": f"{bare.p_data_loss:.3f}",
            "P(loss) RAID-5, 24h rebuild": f"{raid.p_data_loss:.4f}",
        })
    record_table("Extension: failure Monte Carlo over PRESS AFRs (10 disks, 5 years)",
                 format_table(rows))
    by = {r["scheme"]: r for r in rows}
    assert float(by["read"]["E[failures]/5yr"]) <= float(by["pdc"]["E[failures]/5yr"])
