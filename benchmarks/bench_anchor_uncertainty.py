"""Digitization-uncertainty sweep — does the reproduction's one soft
spot matter?

The temperature/utilization anchors are digitized from published bar
charts (DESIGN.md).  This bench re-scores the same Fig. 7-style
comparison under every anchor preset (low/high reading errors, the
rejected 4-year temperature curve, a flat utilization reading) and
verifies the paper's ordering — READ < MAID < PDC on array AFR — holds
under all of them.  Simulations run once; only the PRESS scoring varies.
"""

from conftest import record_table
from repro.experiments.reporting import format_table
from repro.experiments.runner import make_policy, run_simulation
from repro.press.presets import press_model_preset, preset_names


def test_orderings_stable_across_anchor_presets(benchmark, light_config):
    fileset, trace = light_config.generate()

    def run_three():
        return {name: run_simulation(make_policy(name), fileset, trace,
                                     n_disks=10, disk_params=light_config.disk_params)
                for name in ("read", "maid", "pdc")}

    results = benchmark.pedantic(run_three, rounds=1, iterations=1)

    rows = []
    violations = []
    for temp_name, util_name in preset_names():
        model = press_model_preset(temp_name, util_name)
        afrs = {}
        for policy, result in results.items():
            per_disk = [model.disk_afr(f.mean_temperature_c,
                                       f.utilization_percent,
                                       f.transitions_per_day)
                        for f in result.per_disk]
            afrs[policy] = max(per_disk)
        ordered = afrs["read"] <= afrs["maid"] <= afrs["pdc"]
        if not ordered:
            violations.append((temp_name, util_name))
        rows.append({
            "temp_preset": temp_name,
            "util_preset": util_name,
            "read_AFR_%": f"{afrs['read']:.2f}",
            "maid_AFR_%": f"{afrs['maid']:.2f}",
            "pdc_AFR_%": f"{afrs['pdc']:.2f}",
            "ordering": "ok" if ordered else "VIOLATED",
        })

    record_table(
        "Anchor-uncertainty sweep: Fig. 7a ordering under every digitization reading",
        format_table(rows))
    assert not violations, f"ordering violated under presets: {violations}"
