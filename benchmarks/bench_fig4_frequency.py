"""Figures 4a/4b — start/stop adder and the frequency-reliability function.

Fig. 4b is Eq. 3 verbatim; Fig. 4a is the un-halved IDEMA adder (exactly
2x, per the paper's Coffin-Manson damage-ratio argument, which
bench_press_model.py reproduces numerically)."""

import numpy as np

from conftest import record_table
from repro.experiments.figures import figure4a_series, figure4b_series
from repro.experiments.reporting import format_series
from repro.press.frequency import frequency_afr_adder_percent


def test_fig4a_and_4b_series(benchmark):
    def both():
        return figure4a_series(17), figure4b_series(17)

    (freqs_a, idema), (freqs_b, eq3) = benchmark.pedantic(both, rounds=1, iterations=1)
    np.testing.assert_allclose(idema, 2.0 * eq3)
    record_table(
        "Figure 4a/4b: start-stop adder and frequency-reliability function",
        format_series(freqs_a[::2],
                      {"fig4a_IDEMA_AFR_%": idema[::2], "fig4b_Eq3_AFR_%": eq3[::2]},
                      x_label="events_per_day",
                      title="Fig 4b = Eq. 3 = half of Fig 4a (speed transition ~ 50% of a start/stop)"),
    )


def test_eq3_eval_throughput(benchmark):
    freqs = np.random.default_rng(0).uniform(0, 1600, 10_000)
    out = benchmark(frequency_afr_adder_percent, freqs)
    assert np.all(np.asarray(out) >= 0)
