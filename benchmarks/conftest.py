"""Benchmark-suite plumbing: scale control, shared sweeps, table output.

Every bench regenerates one of the paper's figures/tables and registers
its text rendering here; the tables are printed in the terminal summary
(so they survive pytest's output capture) and written to
``benchmarks/results/``.

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable:

* ``smoke``   — seconds; tiny workload, 3 array sizes (CI sanity);
* ``default`` — minutes; the tuned reduced-scale reproduction the
  committed EXPERIMENTS.md numbers come from;
* ``paper``   — the full trace-day scale of the paper (1.48M requests,
  6 array sizes, both conditions); expect a long run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.figures import figure7_comparison
from repro.experiments.runner import ExperimentConfig
from repro.workload.synthetic import SyntheticWorkloadConfig

RESULTS_DIR = Path(__file__).parent / "results"

_TABLES: list[tuple[str, str]] = []


def record_table(title: str, text: str) -> None:
    """Register a reproduction table for end-of-run printing + saving."""
    _TABLES.append((title, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = "".join(c if c.isalnum() else "_" for c in title.lower())[:60]
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n", encoding="utf-8")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for title, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)


# ----------------------------------------------------------------------
# scale configuration
# ----------------------------------------------------------------------
SCALES = {
    "smoke": dict(n_files=400, n_requests=20_000, disk_counts=(6, 10, 16),
                  heavy_intensity=4.0),
    "default": dict(n_files=2_000, n_requests=100_000, disk_counts=(6, 8, 10, 12, 14, 16),
                    heavy_intensity=6.0),
    "paper": dict(n_files=4_079, n_requests=1_480_081, disk_counts=(6, 8, 10, 12, 14, 16),
                  heavy_intensity=6.0),
}


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale_params() -> dict:
    return dict(SCALES[bench_scale()], name=bench_scale())


@pytest.fixture(scope="session")
def light_config(scale_params) -> ExperimentConfig:
    """The light-condition workload (the paper's 58.4 ms trace day)."""
    return ExperimentConfig(workload=SyntheticWorkloadConfig(
        n_files=scale_params["n_files"], n_requests=scale_params["n_requests"],
        seed=7, bursty=True))


@pytest.fixture(scope="session")
def heavy_config(light_config, scale_params) -> ExperimentConfig:
    """The heavy condition: same horizon, intensified arrivals."""
    return light_config.with_heavy_load(scale_params["heavy_intensity"])


# The Fig. 7 sweeps are shared across bench files (comparison, headline,
# worthwhileness) — run each condition exactly once per session.
@pytest.fixture(scope="session")
def fig7_light(light_config, scale_params):
    return figure7_comparison(light_config,
                              disk_counts=scale_params["disk_counts"])


@pytest.fixture(scope="session")
def fig7_heavy(heavy_config, scale_params):
    return figure7_comparison(heavy_config,
                              disk_counts=scale_params["disk_counts"])
