"""Section 5.2 headline numbers — paper vs measured.

The paper's aggregate claims:

* reliability: READ beats MAID by up to 39.7% and PDC by up to 57.5%;
  average improvements 24.9% (MAID) and 50.8% (PDC);
* energy (light): READ uses 4.8% (MAID) / 12.6% (PDC) less on average;
* response time: READ "delivers much shorter mean response times in all
  cases".

This bench computes the same aggregates from the Fig. 7 sweeps and
prints them side by side.  Shape (sign + rough magnitude) is asserted;
exact percentages are not — see EXPERIMENTS.md for the discussion.
"""

from conftest import record_table
from repro.experiments.figures import headline_summary
from repro.experiments.reporting import format_table


def test_headline_vs_paper(benchmark, fig7_light, fig7_heavy):
    light = benchmark.pedantic(headline_summary, args=(fig7_light,),
                               rounds=1, iterations=1)
    heavy = headline_summary(fig7_heavy)

    rows = [
        {"claim": "AFR: READ vs MAID, avg improvement",
         "paper": "24.9%", "light": f"{light['afr']['vs_maid_mean_%']:.1f}%",
         "heavy": f"{heavy['afr']['vs_maid_mean_%']:.1f}%"},
        {"claim": "AFR: READ vs MAID, max improvement",
         "paper": "39.7%", "light": f"{light['afr']['vs_maid_max_%']:.1f}%",
         "heavy": f"{heavy['afr']['vs_maid_max_%']:.1f}%"},
        {"claim": "AFR: READ vs PDC, avg improvement",
         "paper": "50.8%", "light": f"{light['afr']['vs_pdc_mean_%']:.1f}%",
         "heavy": f"{heavy['afr']['vs_pdc_mean_%']:.1f}%"},
        {"claim": "AFR: READ vs PDC, max improvement",
         "paper": "57.5%", "light": f"{light['afr']['vs_pdc_max_%']:.1f}%",
         "heavy": f"{heavy['afr']['vs_pdc_max_%']:.1f}%"},
        {"claim": "energy: READ vs MAID, avg saving (light)",
         "paper": "4.8%", "light": f"{light['energy']['vs_maid_mean_%']:.1f}%",
         "heavy": f"{heavy['energy']['vs_maid_mean_%']:.1f}%"},
        {"claim": "energy: READ vs PDC, avg saving (light)",
         "paper": "12.6%", "light": f"{light['energy']['vs_pdc_mean_%']:.1f}%",
         "heavy": f"{heavy['energy']['vs_pdc_mean_%']:.1f}%"},
        {"claim": "response: READ vs MAID, avg improvement",
         "paper": "shorter in all cases",
         "light": f"{light['response']['vs_maid_mean_%']:.1f}%",
         "heavy": f"{heavy['response']['vs_maid_mean_%']:.1f}%"},
        {"claim": "response: READ vs PDC, avg improvement",
         "paper": "shorter in all cases",
         "light": f"{light['response']['vs_pdc_mean_%']:.1f}%",
         "heavy": f"{heavy['response']['vs_pdc_mean_%']:.1f}%"},
    ]
    record_table("Section 5.2 headline claims: paper vs measured",
                 format_table(rows))

    # shape assertions: every improvement the paper claims positive is
    # positive here too (light condition = the paper's headline setting)
    assert light["afr"]["vs_maid_mean_%"] > 0
    assert light["afr"]["vs_pdc_mean_%"] > 0
    assert light["afr"]["vs_pdc_mean_%"] > light["afr"]["vs_maid_mean_%"]
    assert light["energy"]["vs_maid_mean_%"] > 0
    assert light["energy"]["vs_pdc_mean_%"] > 0
    assert light["response"]["vs_maid_mean_%"] > 0
    assert light["response"]["vs_pdc_mean_%"] > 0
