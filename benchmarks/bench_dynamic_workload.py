"""The "fully dynamic environment" experiment (paper Sec. 6, future work 1).

"First, we will extend our scheme to a fully dynamic environment, where
file access patterns can dramatically change in a short period of time.
As a result, a high file redistribution cost may arise ... One possible
solution is to use file replication technique."

This bench sweeps popularity drift from static to violent and measures
(a) how READ's FRD migration volume grows with drift — the predicted
cost — and (b) whether the replication extension absorbs some of it.
"""

from conftest import record_table
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentConfig, make_policy, run_simulation
from repro.workload.analysis import popularity_churn
from repro.workload.synthetic import SyntheticWorkloadConfig

DRIFTS = (0.0, 0.2, 0.5, 0.8)


def test_redistribution_cost_grows_with_drift(benchmark, scale_params):
    def run_sweep():
        out = {}
        for drift in DRIFTS:
            cfg = ExperimentConfig(workload=SyntheticWorkloadConfig(
                n_files=min(scale_params["n_files"], 1_000),
                n_requests=min(scale_params["n_requests"], 50_000),
                seed=21, bursty=True, popularity_drift=drift,
                drift_segments=8))
            fileset, trace = cfg.generate()
            _, jaccard = popularity_churn(trace, len(fileset),
                                          trace.duration_s / 8)
            for name in ("read", "read-replicate"):
                policy = make_policy(name, epoch_s=trace.duration_s / 8)
                result = run_simulation(policy, fileset, trace, n_disks=10,
                                        disk_params=cfg.disk_params)
                out[(drift, name)] = (result, policy, float(jaccard.mean()))
        return out

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for (drift, name), (result, policy, jac) in sorted(results.items()):
        rows.append({
            "drift": drift,
            "policy": name,
            "top50_overlap": f"{jac:.2f}",
            "migrations": getattr(policy, "migrations_performed", 0),
            "internal_jobs": result.internal_jobs,
            "AFR_%": f"{result.array_afr_percent:.2f}",
            "mrt_ms": f"{result.mean_response_s * 1e3:.2f}",
            "energy_kJ": f"{result.total_energy_j / 1e3:.0f}",
        })
    record_table(
        "Future work 1: redistribution cost vs popularity drift (READ, 10 disks)",
        format_table(rows))

    # the predicted effect: more drift, more FRD migrations
    read_migrations = {drift: results[(drift, "read")][1].migrations_performed
                       for drift in DRIFTS}
    assert read_migrations[0.8] > read_migrations[0.0]
