"""One-shot CI gate: tests, coverage floor, and the perf-regression check.

Runs, in order:

1. the tier-1 test suite (``pytest tests/``) — with ``pytest-cov``
   measuring ``src/repro`` and enforcing the floor configured under
   ``[tool.coverage.report]`` in ``pyproject.toml`` when the plugin is
   installed; without it the suite still runs and the coverage step is
   reported as skipped (the gate must work on minimal toolchains);
2. the throughput regression check (:mod:`benchmarks.check_regression`)
   — skipped with a notice when no fresh measurement exists, failing
   the gate only on an actual regression.

Exit code 0 iff every step that could run passed:

    PYTHONPATH=src python benchmarks/ci_gate.py
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = Path(__file__).resolve().parent / "results" / "throughput.json"


def has_pytest_cov() -> bool:
    return importlib.util.find_spec("pytest_cov") is not None


def run_tests(*, with_coverage: bool) -> int:
    cmd = [sys.executable, "-m", "pytest", "tests/"]
    if with_coverage:
        cmd += ["--cov=repro", "--cov-report=term-missing:skip-covered",
                "--cov-fail-under=80"]
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return subprocess.run(cmd, cwd=REPO_ROOT, env=env).returncode


def run_regression_check() -> int:
    from check_regression import main as check_main
    if not RESULTS_PATH.exists():
        print(f"ci_gate: no throughput measurement at {RESULTS_PATH} — "
              "perf gate skipped (run bench_throughput.py to arm it)")
        return 0
    return check_main([str(RESULTS_PATH)])


def main() -> int:
    coverage = has_pytest_cov()
    if not coverage:
        print("ci_gate: pytest-cov not installed — running tests without "
              "the coverage floor")
    rc = run_tests(with_coverage=coverage)
    if rc != 0:
        print(f"ci_gate: test suite failed (exit {rc})")
        return rc
    rc = run_regression_check()
    if rc != 0:
        print(f"ci_gate: perf regression gate failed (exit {rc})")
        return rc
    print("ci_gate: all gates passed"
          + ("" if coverage else " (coverage skipped)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
