#!/usr/bin/env python
"""The title question, quantified: when IS it worthwhile to sacrifice
reliability for energy?

Compares each energy-saving scheme against the always-on array while
sweeping the two economic knobs that decide the answer — electricity
price and the value of the data on a failed disk — and reports the
break-even data value per scheme.  This operationalizes Sec. 3.5's
qualitative claim that "the value of lost data plus the price of failed
disks substantially outweigh the energy-saving gained".
"""

import numpy as np

from repro import ExperimentConfig, make_policy, run_simulation
from repro.experiments.costmodel import CostAssumptions, evaluate_worthwhileness
from repro.experiments.reporting import format_table
from repro.workload import SyntheticWorkloadConfig


def break_even_data_value(scheme, reference, *, electricity: float) -> float:
    """Data-loss $ value at which the scheme's net benefit hits zero.

    Net = energy$ - d(failures) * (replacement + data_value); solve for
    data_value.  Returns inf when the scheme is *more* reliable (no
    break-even: it wins at any data value), and 0 when it saves no
    energy at all.
    """
    a0 = CostAssumptions(electricity_usd_per_kwh=electricity, data_loss_cost_usd=0.0)
    v0 = evaluate_worthwhileness(scheme, reference, a0)
    a1 = CostAssumptions(electricity_usd_per_kwh=electricity, data_loss_cost_usd=1.0)
    v1 = evaluate_worthwhileness(scheme, reference, a1)
    failure_delta_per_usd = (v1.extra_failure_cost_usd_per_year
                             - v0.extra_failure_cost_usd_per_year)
    if failure_delta_per_usd <= 0:
        return float("inf")
    remaining = v0.net_benefit_usd_per_year
    return max(0.0, remaining / failure_delta_per_usd)


def main() -> None:
    config = ExperimentConfig(workload=SyntheticWorkloadConfig(
        n_files=1_500, n_requests=60_000, seed=11, bursty=True))
    fileset, trace = config.generate()

    print("simulating 10-disk array under each policy ...")
    results = {name: run_simulation(make_policy(name), fileset, trace,
                                    n_disks=10, disk_params=config.disk_params)
               for name in ("static-high", "read", "maid", "pdc")}
    reference = results["static-high"]

    # verdict matrix across economic assumptions
    rows = []
    for electricity in (0.05, 0.10, 0.30):
        for data_value in (0.0, 1_000.0, 10_000.0):
            assumptions = CostAssumptions(electricity_usd_per_kwh=electricity,
                                          data_loss_cost_usd=data_value)
            row = {"elec_$/kWh": electricity, "data_value_$": f"{data_value:,.0f}"}
            for name in ("read", "maid", "pdc"):
                verdict = evaluate_worthwhileness(results[name], reference, assumptions)
                row[name] = (f"{'YES' if verdict.worthwhile else 'no ':>3} "
                             f"({verdict.net_benefit_usd_per_year:+,.0f}$/yr)")
            rows.append(row)
    print()
    print(format_table(rows, title="Is it worthwhile? (net $/yr vs always-on array)"))

    print("\nbreak-even data value per failed disk (at $0.10/kWh):")
    for name in ("read", "maid", "pdc"):
        be = break_even_data_value(results[name], reference, electricity=0.10)
        afr_delta = (results[name].array_afr_percent - reference.array_afr_percent)
        label = "always worthwhile (no reliability loss)" if np.isinf(be) else f"${be:,.0f}"
        print(f"  {name:6s}: dAFR {afr_delta:+6.2f} pts -> break-even {label}")

    print("\nreading: a scheme is only 'worthwhile' while the data on a disk is "
          "worth less than its break-even value — the paper's thesis, priced.")


if __name__ == "__main__":
    main()
