#!/usr/bin/env python
"""Replay a WorldCup98-format binary trace through the simulator.

The paper evaluates against the real WorldCup98-05-09 access log, which
ships as packed 20-byte binary records.  This example shows the full
real-trace pipeline:

1. synthesize a day of traffic and *encode it in the actual WC98 wire
   format* (stand-in for the non-redistributable original — point
   ``TRACE_PATH`` at a real ``wc_day*`` file to replay the original);
2. decode it with :func:`repro.workload.wc98.read_wc98`;
3. convert to simulator inputs with :func:`wc98_to_trace`;
4. run the three policies over it and compare.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import make_policy, run_simulation
from repro.disk.parameters import cheetah_two_speed
from repro.experiments.reporting import format_table
from repro.workload.wc98 import WC98Record, read_wc98, wc98_to_trace, write_wc98
from repro.workload.zipf import zipf_sample_ranks

#: Point this at a real WorldCup98 binary log to replay the original.
TRACE_PATH: Path | None = None


def synthesize_wc98_day(path: Path, n_requests: int = 40_000,
                        n_objects: int = 1_200, seed: int = 4) -> None:
    """Write a WC98-format file with Zipf-skewed, time-bunched traffic."""
    rng = np.random.default_rng(seed)
    # second-resolution timestamps across ~2.3 hours (scaled-down day)
    timestamps = np.sort(rng.integers(0, 8_400, n_requests)).astype(np.uint32)
    objects = zipf_sample_ranks(n_objects, 0.8, n_requests, seed=rng)
    # per-object sizes: small web files, popularity inversely size-ranked
    object_sizes = np.sort(rng.lognormal(np.log(8_000), 1.2, n_objects))
    records = [
        WC98Record(timestamp=int(t), client_id=int(rng.integers(0, 5_000)),
                   object_id=int(o), size=int(max(200, object_sizes[o])),
                   method=0, status=2, type=1, server=0)
        for t, o in zip(timestamps, objects)
    ]
    count = write_wc98(records, path)
    print(f"wrote {count} records ({path.stat().st_size / 1e6:.1f} MB) "
          f"in WC98 binary format -> {path}")


def main() -> None:
    if TRACE_PATH is not None:
        path = TRACE_PATH
    else:
        path = Path(tempfile.mkdtemp()) / "wc_day_synthetic.bin"
        synthesize_wc98_day(path)

    records = read_wc98(path)
    fileset, trace = wc98_to_trace(records)
    stats = trace.stats(len(fileset))
    print(f"decoded: {stats.n_requests} GET requests, "
          f"{len(fileset)} distinct objects ({fileset.total_mb:.1f} MB), "
          f"mean inter-arrival {stats.mean_interarrival_s * 1e3:.1f} ms, "
          f"Zipf alpha ~ {stats.zipf_alpha:.2f}")

    params = cheetah_two_speed()
    rows = []
    for name in ("read", "maid", "pdc"):
        result = run_simulation(make_policy(name), fileset, trace,
                                n_disks=8, disk_params=params)
        rows.append({
            "policy": name,
            "AFR_%": f"{result.array_afr_percent:.2f}",
            "energy_kJ": f"{result.total_energy_j / 1e3:.0f}",
            "mrt_ms": f"{result.mean_response_s * 1e3:.2f}",
            "transitions": result.total_transitions,
        })
    print()
    print(format_table(rows, title="replayed WC98-format trace, 8-disk array"))


if __name__ == "__main__":
    main()
