#!/usr/bin/env python
"""Capacity planning: pick the smallest array that meets an SLA *and* a
reliability target.

A storage operator has a web workload, a 30 ms mean-response-time SLA,
and a reliability ceiling (array AFR <= 12%).  This example sweeps array
sizes under each policy, prints which configurations qualify, and costs
the qualifying ones (3-year TCO: energy + expected failures) — the kind
of decision the PRESS model exists to inform (Sec. 3: "storage system
administrators can evaluate existing energy-saving schemes' impacts").
"""

from repro import ExperimentConfig, make_policy, run_simulation
from repro.experiments.costmodel import CostAssumptions, expected_failures_per_year
from repro.experiments.reporting import format_table
from repro.util.units import SECONDS_PER_YEAR, joules_to_kwh
from repro.workload import SyntheticWorkloadConfig

SLA_MEAN_RESPONSE_S = 0.030
MAX_ARRAY_AFR_PERCENT = 12.0
PLANNING_YEARS = 3.0


def three_year_tco_usd(result, assumptions: CostAssumptions) -> float:
    """Energy + expected-failure cost over the planning horizon."""
    annual_energy_j = result.total_energy_j * SECONDS_PER_YEAR / result.duration_s
    energy_usd = (joules_to_kwh(annual_energy_j) * assumptions.electricity_usd_per_kwh
                  * assumptions.power_overhead_factor)
    failures = expected_failures_per_year(result.array_afr_percent, result.n_disks)
    return PLANNING_YEARS * (energy_usd + failures * assumptions.failure_cost_usd)


def main() -> None:
    config = ExperimentConfig(workload=SyntheticWorkloadConfig(
        n_files=1_500, n_requests=60_000, seed=3, bursty=True))
    fileset, trace = config.generate()
    assumptions = CostAssumptions()

    rows = []
    best = None
    for policy_name in ("read", "maid", "pdc", "static-high"):
        for n_disks in (6, 8, 10, 12):
            result = run_simulation(make_policy(policy_name), fileset, trace,
                                    n_disks=n_disks, disk_params=config.disk_params)
            meets_sla = result.mean_response_s <= SLA_MEAN_RESPONSE_S
            meets_afr = result.array_afr_percent <= MAX_ARRAY_AFR_PERCENT
            tco = three_year_tco_usd(result, assumptions)
            rows.append({
                "policy": policy_name,
                "disks": n_disks,
                "mrt_ms": f"{result.mean_response_s * 1e3:.1f}",
                "AFR_%": f"{result.array_afr_percent:.2f}",
                "3yr_TCO_$": f"{tco:,.0f}",
                "SLA": "ok" if meets_sla else "MISS",
                "reliability": "ok" if meets_afr else "MISS",
            })
            if meets_sla and meets_afr and (best is None or tco < best[2]):
                best = (policy_name, n_disks, tco)

    print(format_table(rows, title=(
        f"Capacity plan: SLA <= {SLA_MEAN_RESPONSE_S*1e3:.0f} ms mean response, "
        f"AFR <= {MAX_ARRAY_AFR_PERCENT:.0f}%, {PLANNING_YEARS:.0f}-year TCO")))

    if best:
        name, disks, tco = best
        print(f"\nrecommended: {name} on {disks} disks "
              f"(3-year TCO ${tco:,.0f} incl. energy and expected failures)")
    else:
        print("\nno configuration meets both targets — widen the sweep")


if __name__ == "__main__":
    main()
