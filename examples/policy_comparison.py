#!/usr/bin/env python
"""Reproduce the paper's Figure 7 comparison at example scale.

Runs READ, MAID, and PDC over the same trace at several array sizes and
prints the three panels (reliability / energy / mean response time) plus
the Sec. 5.2 headline aggregates.  Takes a minute or two.

Pass ``--quick`` for a smaller sweep.
"""

import sys

import numpy as np

from repro import ExperimentConfig
from repro.experiments.figures import figure7_comparison, headline_summary
from repro.experiments.reporting import format_improvement, format_series
from repro.workload import SyntheticWorkloadConfig


def main() -> None:
    quick = "--quick" in sys.argv
    config = ExperimentConfig(workload=SyntheticWorkloadConfig(
        n_files=800 if quick else 2_000,
        n_requests=30_000 if quick else 100_000,
        seed=7, bursty=True))
    disk_counts = (6, 10, 16) if quick else (6, 8, 10, 12, 14, 16)

    print(f"running Fig. 7 sweep: {len(disk_counts)} array sizes x 3 policies ...")
    fig7 = figure7_comparison(config, disk_counts=disk_counts)

    x = np.array(fig7.disk_counts, dtype=float)
    print()
    print(format_series(x, fig7.series("afr"), x_label="disks",
                        title="Fig 7a: array AFR [%] (PRESS, max over disks)"))
    print()
    print(format_series(x, {k: v / 1e3 for k, v in fig7.series("energy").items()},
                        x_label="disks", title="Fig 7b: energy [kJ]"))
    print()
    print(format_series(x, {k: v * 1e3 for k, v in fig7.series("response").items()},
                        x_label="disks", title="Fig 7c: mean response time [ms]"))

    print("\nheadline aggregates (cf. paper Sec. 5.2):")
    afr = fig7.series("afr")
    energy = fig7.series("energy")
    mrt = fig7.series("response")
    for other in ("maid", "pdc"):
        print(" ", format_improvement("read", afr["read"], other, afr[other]),
              "(AFR)")
        print(" ", format_improvement("read", energy["read"], other, energy[other]),
              "(energy)")
        print(" ", format_improvement("read", mrt["read"], other, mrt[other]),
              "(response time)")

    summary = headline_summary(fig7)
    print("\npaper claims: AFR improvement avg 24.9% (MAID) / 50.8% (PDC), "
          "energy saving avg 4.8% / 12.6%")
    print(f"measured    : AFR improvement avg "
          f"{summary['afr']['vs_maid_mean_%']:.1f}% / "
          f"{summary['afr']['vs_pdc_mean_%']:.1f}%, energy saving avg "
          f"{summary['energy']['vs_maid_mean_%']:.1f}% / "
          f"{summary['energy']['vs_pdc_mean_%']:.1f}%")


if __name__ == "__main__":
    main()
