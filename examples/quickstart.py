#!/usr/bin/env python
"""Quickstart: simulate READ on a WorldCup98-like day and read the results.

Runs in a few seconds.  Shows the three-step public API:

1. build a workload (``ExperimentConfig`` -> ``generate()``);
2. run a policy over it (``run_simulation``);
3. read the metrics — performance, energy, and the PRESS reliability
   assessment of every disk.
"""

from repro import ExperimentConfig, make_policy, run_simulation
from repro.workload import SyntheticWorkloadConfig


def main() -> None:
    # A scaled-down trace day: 1,000 files, 50k whole-file web requests,
    # Zipf-skewed popularity, bursty arrivals (see DESIGN.md for how this
    # substitutes for the real WorldCup98-05-09 trace).
    config = ExperimentConfig(workload=SyntheticWorkloadConfig(
        n_files=1_000, n_requests=50_000, seed=1, bursty=True))
    fileset, trace = config.generate()

    stats = trace.stats(len(fileset))
    print(f"workload: {stats.n_requests} requests over {stats.duration_s:.0f} s, "
          f"{stats.n_files_referenced} files touched, "
          f"top-20% files take {stats.top20_access_fraction:.0%} of accesses "
          f"(theta = {stats.theta:.3f})")

    policy = make_policy("read")          # the paper's contribution
    result = run_simulation(policy, fileset, trace, n_disks=10,
                            disk_params=config.disk_params)

    print(f"\nREAD on a 10-disk two-speed Cheetah array:")
    print(f"  mean response time : {result.mean_response_s * 1e3:8.2f} ms "
          f"(p95 {result.p95_response_s * 1e3:.2f} ms)")
    print(f"  energy consumed    : {result.total_energy_j / 1e3:8.1f} kJ "
          f"({result.energy_kwh:.3f} kWh)")
    print(f"  array AFR (PRESS)  : {result.array_afr_percent:8.3f} %")
    print(f"  speed transitions  : {result.total_transitions:8d} "
          f"(cap S = {result.policy_detail['transition_cap_per_day']}/disk/day)")

    print("\nper-disk ESRRA factors (what PRESS consumed):")
    print(f"  {'disk':>4} {'temp degC':>10} {'util %':>8} {'trans/day':>10} {'AFR %':>8}")
    for f in result.per_disk:
        print(f"  {f.disk_id:>4} {f.mean_temperature_c:>10.1f} "
              f"{f.utilization_percent:>8.2f} {f.transitions_per_day:>10.1f} "
              f"{f.afr_percent:>8.3f}")
    worst = result.worst_disk
    print(f"\narray AFR = least reliable disk (d{worst.disk_id}) — Sec. 3.5's max rule")


if __name__ == "__main__":
    main()
