#!/usr/bin/env python
"""From AFR to operator reality: failures, rebuilds, and data loss.

PRESS stops at an Annualized Failure Rate.  This example carries each
scheme's per-disk AFRs into a Monte Carlo of the failure process over a
5-year deployment and asks the questions an operator actually budgets
for: how many disk swaps, and what is the probability of losing data —
without redundancy, with RAID-5 parity, and as a function of rebuild
speed.
"""

from repro import ExperimentConfig, make_policy, run_simulation
from repro.experiments.failures import simulate_failures
from repro.experiments.reporting import format_table
from repro.workload import SyntheticWorkloadConfig

YEARS = 5.0
N_DISKS = 10


def main() -> None:
    config = ExperimentConfig(workload=SyntheticWorkloadConfig(
        n_files=1_500, n_requests=60_000, seed=13, bursty=True))
    fileset, trace = config.generate()

    print(f"simulating {N_DISKS}-disk array under each policy ...")
    results = {name: run_simulation(make_policy(name), fileset, trace,
                                    n_disks=N_DISKS, disk_params=config.disk_params)
               for name in ("static-high", "read", "maid", "pdc")}

    rows = []
    for name, result in results.items():
        afrs = [f.afr_percent for f in result.per_disk]
        none = simulate_failures(afrs, years=YEARS, n_trials=2_000,
                                 redundancy="none", seed=1)
        raid_fast = simulate_failures(afrs, years=YEARS, n_trials=2_000,
                                      redundancy="parity", repair_hours=12.0, seed=1)
        raid_slow = simulate_failures(afrs, years=YEARS, n_trials=2_000,
                                      redundancy="parity", repair_hours=24 * 7, seed=1)
        rows.append({
            "scheme": name,
            "array_AFR_%": f"{result.array_afr_percent:.2f}",
            f"E[swaps]/{YEARS:.0f}yr": f"{none.expected_failures:.2f}",
            "P(loss) bare": f"{none.p_data_loss:.3f}",
            "P(loss) RAID5 12h": f"{raid_fast.p_data_loss:.4f}",
            "P(loss) RAID5 7d": f"{raid_slow.p_data_loss:.4f}",
        })

    print()
    print(format_table(rows, title=f"{YEARS:.0f}-year failure outlook, {N_DISKS} disks "
                                   "(2,000 Monte Carlo trials)"))
    print("\nreading: redundancy absorbs most single failures, but the churny "
          "schemes still pay in disk swaps — and their loss probability "
          "degrades fastest when rebuilds are slow, which is exactly when "
          "arrays are busiest.")


if __name__ == "__main__":
    main()
